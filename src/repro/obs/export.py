"""Telemetry export: Chrome ``trace_event`` JSON plus a flat run report.

One recorded run — the main recorder and every worker snapshot it absorbed —
exports to a single JSON file in the Chrome trace-event format, which both
``chrome://tracing`` and Perfetto render as a timeline with one track per
(pid, tid): the main process on one track, each pool worker on its own, so a
sharded ``.rpb`` reduction shows dispatch vs decode vs match vs merge time
per shard at a glance.

The same file carries, under ``otherData``, the run's metrics registry, the
deterministic merge of the per-worker registries, per-worker snapshots, the
provenance block, and any caller metadata — so ``repro-trace report FILE``
can rebuild per-stage/per-worker tables and the top-N hottest spans without
re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.obs.metrics import MetricsSnapshot
from repro.obs.provenance import provenance
from repro.obs.trace import Recorder, SpanRecord

__all__ = [
    "chrome_trace_payload",
    "write_chrome_trace",
    "load_trace",
    "span_coverage",
    "run_report",
    "render_report",
]


def _json_safe(value):
    return value if isinstance(value, (str, int, float, bool, type(None))) else str(value)


def _span_event(span: SpanRecord, t0_ns: int) -> dict:
    return {
        "name": span.name,
        "cat": "repro",
        "ph": "X",
        "ts": (span.start_ns - t0_ns) / 1000.0,  # microseconds since run start
        "dur": span.duration_ns / 1000.0,
        "pid": span.pid,
        "tid": span.tid,
        "args": {key: _json_safe(value) for key, value in span.attrs.items()},
    }


def chrome_trace_payload(recorder: Recorder, *, metadata: Optional[dict] = None) -> dict:
    """Build the Chrome ``trace_event`` JSON object for one recorded run."""
    tracks: list[tuple[str, int, list[SpanRecord]]] = [
        (recorder.label, recorder.pid, list(recorder.spans))
    ]
    for snapshot in recorder.absorbed:
        tracks.append((snapshot.label, snapshot.pid, snapshot.spans))

    all_spans = [span for _, _, spans in tracks for span in spans]
    t0_ns = min((span.start_ns for span in all_spans), default=recorder.epoch_origin_ns)

    events: list[dict] = []
    labels: dict[int, str] = {}
    for label, pid, _ in tracks:
        # First label wins per pid: a worker process that ran several tasks
        # contributes several snapshots but is still one track.
        labels.setdefault(pid, label)
    for pid, label in sorted(labels.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"{label} (pid {pid})"},
            }
        )
    events.extend(_span_event(span, t0_ns) for span in all_spans)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "t0_epoch_ns": t0_ns,
            "metadata": {k: _json_safe(v) for k, v in (metadata or {}).items()},
            "provenance": provenance(),
            "metrics": {
                "run": recorder.registry.snapshot().as_json(),
                "workers_merged": recorder.worker_metrics().as_json(),
            },
            "worker_snapshots": [
                {
                    "label": snapshot.label,
                    "pid": snapshot.pid,
                    "n_spans": snapshot.n_spans,
                    "metrics": snapshot.metrics.as_json(),
                }
                for snapshot in recorder.absorbed
            ],
        },
    }


def write_chrome_trace(
    recorder: Recorder, path: str | Path, *, metadata: Optional[dict] = None
) -> dict:
    """Export ``recorder`` to ``path``; returns the written payload."""
    payload = chrome_trace_payload(recorder, metadata=metadata)
    Path(path).write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def load_trace(path: str | Path) -> dict:
    """Read an exported telemetry file back into its payload dict."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _duration_events(payload: dict) -> list[dict]:
    return [e for e in payload.get("traceEvents", ()) if e.get("ph") == "X"]


def span_coverage(payload: dict) -> float:
    """Fraction of the run's wall span covered by at least one recorded span.

    Computed as the union of all ``X`` event intervals (across every track)
    over the run's extent — the acceptance criterion for "spans cover the
    run" without double-counting nested or concurrent spans.
    """
    events = _duration_events(payload)
    if not events:
        return 0.0
    intervals = sorted((e["ts"], e["ts"] + e["dur"]) for e in events)
    t_min = intervals[0][0]
    t_max = max(end for _, end in intervals)
    if t_max <= t_min:
        return 1.0
    covered = 0.0
    cursor = t_min
    for start, end in intervals:
        if end <= cursor:
            continue
        covered += end - max(start, cursor)
        cursor = end
    return covered / (t_max - t_min)


def _fmt_ms(us: float) -> str:
    return f"{us / 1000.0:.3f}"


def run_report(payload: dict, *, top: int = 10) -> str:
    """Render one exported run as per-stage / per-worker / top-span tables."""
    from repro.util.tables import format_table

    events = _duration_events(payload)
    other = payload.get("otherData", {})
    sections: list[str] = []

    meta = other.get("metadata", {})
    prov = other.get("provenance", {})
    head_rows = [[key, meta[key]] for key in meta]
    if prov:
        head_rows.append(
            ["recorded on", f"python {prov.get('python')} / {prov.get('platform')}"]
        )
        head_rows.append(["git sha", prov.get("git_sha") or "-"])
    head_rows.append(["span events", len(events)])
    head_rows.append(["span coverage", f"{100.0 * span_coverage(payload):.1f}% of wall time"])
    sections.append(format_table(["property", "value"], head_rows, title="telemetry run"))

    wall_us = 0.0
    if events:
        wall_us = max(e["ts"] + e["dur"] for e in events) - min(e["ts"] for e in events)

    by_name: dict[str, list[dict]] = {}
    for event in events:
        by_name.setdefault(event["name"], []).append(event)
    stage_rows = []
    for name, group in sorted(
        by_name.items(), key=lambda item: -sum(e["dur"] for e in item[1])
    ):
        total = sum(e["dur"] for e in group)
        stage_rows.append(
            [
                name,
                len(group),
                _fmt_ms(total),
                _fmt_ms(total / len(group)),
                f"{100.0 * total / wall_us:.1f}" if wall_us else "-",
            ]
        )
    sections.append(
        format_table(
            ["span", "count", "total ms", "mean ms", "% wall"],
            stage_rows,
            title="per-stage spans",
        )
    )

    by_track: dict[tuple[int, int], list[dict]] = {}
    for event in events:
        by_track.setdefault((event["pid"], event["tid"]), []).append(event)
    track_labels = {
        e["pid"]: e["args"].get("name", "")
        for e in payload.get("traceEvents", ())
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    worker_rows = []
    for (pid, tid), group in sorted(by_track.items()):
        busiest = max(group, key=lambda e: e["dur"])
        worker_rows.append(
            [
                track_labels.get(pid, str(pid)),
                tid,
                len(group),
                _fmt_ms(sum(e["dur"] for e in group)),
                busiest["name"],
            ]
        )
    sections.append(
        format_table(
            ["process", "tid", "spans", "busy ms", "hottest span"],
            worker_rows,
            title=f"per-worker tracks ({len(by_track)} tracks)",
        )
    )

    hottest = sorted(events, key=lambda e: -e["dur"])[:top]
    top_rows = [
        [
            event["name"],
            _fmt_ms(event["ts"]),
            _fmt_ms(event["dur"]),
            event["pid"],
            ", ".join(f"{k}={v}" for k, v in sorted(event["args"].items())) or "-",
        ]
        for event in hottest
    ]
    sections.append(
        format_table(
            ["span", "start ms", "dur ms", "pid", "attributes"],
            top_rows,
            title=f"top {len(top_rows)} hottest spans",
        )
    )

    metrics = other.get("metrics", {})
    run_metrics = MetricsSnapshot.from_json(metrics.get("run", {}))
    worker_metrics = MetricsSnapshot.from_json(metrics.get("workers_merged", {}))
    if run_metrics or worker_metrics:
        merged_names = sorted(
            set(run_metrics.values) | set(worker_metrics.values)
        )
        metric_rows = []
        for name in merged_names:
            run_value = run_metrics.get(name)
            worker_value = worker_metrics.get(name)
            metric_rows.append(
                [
                    name,
                    (run_value.kind if run_value else worker_value.kind),
                    f"{run_value.scalar():g}" if run_value else "-",
                    f"{worker_value.scalar():g}" if worker_value else "-",
                ]
            )
        sections.append(
            format_table(
                ["metric", "kind", "run total", "workers (merged)"],
                metric_rows,
                title="metrics",
            )
        )

    return "\n\n".join(sections)


def render_report(path: str | Path, *, top: int = 10) -> str:
    """Load an exported telemetry file and render its run report."""
    return run_report(load_trace(path), top=top)
