"""Run provenance: who/where/when a measurement was taken.

Benchmark JSON reports (``BENCH_*.json``) and exported telemetry files embed
one shared provenance block so the perf trajectory stays attributable across
runners: a 4.7x on one machine and a 3.9x on another are different facts, and
without the interpreter/cpu/sha context the numbers cannot be compared run
over run.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from pathlib import Path

__all__ = ["provenance"]

_REPO_ROOT = Path(__file__).resolve().parents[3]


def _git_sha() -> str | None:
    """Current commit sha, or None outside a git checkout / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def provenance() -> dict:
    """The shared provenance block embedded in benchmark and telemetry files."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
    }
