"""``repro.obs`` — zero-dependency telemetry: spans, metrics, timeline export.

The engine layers import this package as ``from repro import obs`` and call
``obs.span(...)`` / ``obs.counter(...)`` unconditionally; when no recorder is
active those calls hit a module-level no-op fast path cheap enough to leave
in the match kernel's callers (<1% overhead, asserted by
``benchmarks/test_obs_overhead.py``).
"""

from repro.obs.export import (
    chrome_trace_payload,
    load_trace,
    render_report,
    run_report,
    span_coverage,
    write_chrome_trace,
)
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    MetricValue,
    merge_snapshots,
)
from repro.obs.provenance import provenance
from repro.obs.trace import (
    Recorder,
    RecorderSnapshot,
    SpanRecord,
    counter,
    current_recorder,
    disable,
    enable,
    enabled,
    local_recording,
    observe,
    recording,
    span,
)

__all__ = [
    "span",
    "counter",
    "observe",
    "enabled",
    "current_recorder",
    "enable",
    "disable",
    "recording",
    "local_recording",
    "Recorder",
    "RecorderSnapshot",
    "SpanRecord",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricValue",
    "merge_snapshots",
    "chrome_trace_payload",
    "write_chrome_trace",
    "load_trace",
    "span_coverage",
    "run_report",
    "render_report",
    "provenance",
]
