"""Hierarchical spans: nestable, thread/process-aware, cheap when disabled.

The engine layers call :func:`span` around their stages::

    with obs.span("rank.reduce", rank=rank):
        ...

When no recorder is active — the default — :func:`span` returns a shared
no-op context manager after a single global load: no span ids are allocated,
no timestamps are read, no objects are built.  That module-level fast path is
what keeps the instrumentation in the match kernel's callers under the 1%
overhead budget (asserted by ``benchmarks/test_obs_overhead.py``).

When a :class:`Recorder` is active, each span records a
:class:`SpanRecord` on exit: name, wall-clock start (``time_ns`` anchor plus
a ``perf_counter_ns`` offset, so spans from different processes line up on
one timeline), duration, pid/tid, parent span id (per-thread stacks make
nesting work across threads), and its keyword attributes.

Two activation scopes exist:

* :func:`enable` / :func:`disable` / :func:`recording` install a recorder
  **globally** for the process — the main-process scope the CLI uses;
* :func:`local_recording` installs a recorder for the **current thread
  only** — the scope pool tasks use, so thread-pool workers can each capture
  a private recorder without racing on the global, and fork()ed process
  workers shadow the (orphaned, copy-on-write) recorder they inherited.

Worker recorders travel back to the parent as :class:`RecorderSnapshot`
values piggybacked on the existing task result tuples; the parent recorder
:meth:`~Recorder.absorb`\\ s them, and the exporter renders one track per
worker pid/tid.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, merge_snapshots

__all__ = [
    "SpanRecord",
    "RecorderSnapshot",
    "Recorder",
    "span",
    "counter",
    "observe",
    "enabled",
    "current_recorder",
    "enable",
    "disable",
    "recording",
    "local_recording",
]


@dataclass(slots=True)
class SpanRecord:
    """One completed span.

    ``start_ns`` is wall-clock (unix epoch) nanoseconds, derived from the
    owning recorder's epoch/perf anchor pair — that is what lets spans
    recorded in different processes (each with its own ``perf_counter``
    origin) merge onto a single timeline.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ns: int
    duration_ns: int
    pid: int
    tid: int
    attrs: dict

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns


@dataclass(slots=True)
class RecorderSnapshot:
    """A recorder's picklable state: the payload a pool task returns."""

    label: str
    pid: int
    spans: list
    metrics: MetricsSnapshot

    @property
    def n_spans(self) -> int:
        return len(self.spans)


class Recorder:
    """Per-process in-memory span + metrics sink.

    Span records are appended under a lock (the thread executor shares one
    recorder across worker threads on the serial path); per-thread span
    stacks live in a ``threading.local`` so nesting is tracked independently
    per thread.  ``absorbed`` collects worker snapshots so one recorder can
    represent a whole parallel run.
    """

    def __init__(self, label: str = "main") -> None:
        self.label = label
        self.pid = os.getpid()
        self.epoch_origin_ns = time.time_ns()
        self.perf_origin_ns = time.perf_counter_ns()
        self.registry = MetricsRegistry()
        self.spans: list[SpanRecord] = []
        self.absorbed: list[RecorderSnapshot] = []
        self._lock = threading.Lock()
        self._next_id = 1
        self._stacks = threading.local()

    # -- span bookkeeping -------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    @property
    def next_span_id(self) -> int:
        """Ids handed out so far + 1 (tests assert the disabled path is 1)."""
        return self._next_id

    def wall_ns(self, perf_ns: int) -> int:
        return self.epoch_origin_ns + (perf_ns - self.perf_origin_ns)

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)

    def span(self, name: str, **attrs) -> "_Span":
        """A span bound to this recorder, regardless of the active scope."""
        return _Span(self, name, attrs)

    # -- aggregation -------------------------------------------------------------

    def absorb(self, snapshot: Optional[RecorderSnapshot]) -> None:
        """Attach a worker's snapshot (``None`` is accepted and ignored)."""
        if snapshot is None:
            return
        with self._lock:
            self.absorbed.append(snapshot)

    def snapshot(self) -> RecorderSnapshot:
        with self._lock:
            return RecorderSnapshot(
                label=self.label,
                pid=self.pid,
                spans=list(self.spans),
                metrics=self.registry.snapshot(),
            )

    def worker_metrics(self) -> MetricsSnapshot:
        """Deterministic merge of every absorbed worker's metric snapshot."""
        return merge_snapshots(s.metrics for s in self.absorbed)

    @property
    def n_spans(self) -> int:
        return len(self.spans) + sum(s.n_spans for s in self.absorbed)


class _NoopSpan:
    """The shared disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """A live span: allocates its id and timestamps only between enter/exit."""

    __slots__ = ("_recorder", "_name", "_attrs", "_start", "span_id", "parent_id")

    def __init__(self, recorder: Recorder, name: str, attrs: dict) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None

    def __enter__(self) -> "_Span":
        recorder = self._recorder
        self.span_id = recorder.allocate_id()
        stack = recorder._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter_ns()
        recorder = self._recorder
        stack = recorder._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        recorder.record(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self._name,
                start_ns=recorder.wall_ns(self._start),
                duration_ns=end - self._start,
                pid=recorder.pid,
                tid=threading.get_ident(),
                attrs=self._attrs,
            )
        )
        return False


#: Process-global active recorder (the CLI / main-process scope).
_GLOBAL: Optional[Recorder] = None
#: Thread-local override (the pool-task scope); shadows the global.
_LOCAL = threading.local()


def current_recorder() -> Optional[Recorder]:
    """The recorder :func:`span` would record into right now, or ``None``."""
    local = getattr(_LOCAL, "recorder", None)
    return local if local is not None else _GLOBAL


def enabled() -> bool:
    """True when any recorder (global or thread-local) is active."""
    return current_recorder() is not None


def span(name: str, **attrs):
    """Open a span in the active scope; a shared no-op when telemetry is off.

    The disabled path is one global load, one thread-local attribute probe,
    and a singleton return — no ids, no clock reads, no allocation.
    """
    recorder = getattr(_LOCAL, "recorder", None)
    if recorder is None:
        recorder = _GLOBAL
        if recorder is None:
            return _NOOP
    return _Span(recorder, name, attrs)


def counter(name: str, n=1) -> None:
    """Increment a counter on the active recorder's registry (no-op when off)."""
    recorder = current_recorder()
    if recorder is not None:
        recorder.registry.inc(name, n)


def observe(name: str, value) -> None:
    """Observe a histogram value on the active recorder (no-op when off)."""
    recorder = current_recorder()
    if recorder is not None:
        recorder.registry.observe(name, value)


def enable(recorder: Optional[Recorder] = None) -> Recorder:
    """Install ``recorder`` (or a fresh one) as the process-global sink."""
    global _GLOBAL
    if recorder is None:
        recorder = Recorder()
    _GLOBAL = recorder
    return recorder


def disable() -> Optional[Recorder]:
    """Remove the process-global recorder; returns what was installed."""
    global _GLOBAL
    recorder = _GLOBAL
    _GLOBAL = None
    return recorder


@contextmanager
def recording(label: str = "main", recorder: Optional[Recorder] = None):
    """Enable a recorder for the enclosed block, restoring the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    active = recorder if recorder is not None else Recorder(label=label)
    _GLOBAL = active
    try:
        yield active
    finally:
        _GLOBAL = previous


@contextmanager
def local_recording(recorder: Recorder):
    """Make ``recorder`` the active sink for the current thread only.

    This is the pool-task scope: thread workers each capture privately
    without touching the global, and fork()ed process workers shadow the
    orphaned parent recorder they inherited copy-on-write.
    """
    previous = getattr(_LOCAL, "recorder", None)
    _LOCAL.recorder = recorder
    try:
        yield recorder
    finally:
        _LOCAL.recorder = previous
