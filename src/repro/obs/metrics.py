"""Typed metrics registry: named counters, gauges, and histograms.

The repo's instrumentation grew up as a patchwork of ad-hoc dataclasses —
:class:`~repro.pipeline.store.StoreCounters`,
:class:`~repro.core.candidates.MatchCounters`, the sweep sharing stats — each
with its own ``merged_with``.  This module is the common substrate they all
record into: a :class:`MetricsRegistry` of named instruments with a **typed,
deterministic** snapshot/merge protocol, so per-worker registries taken in
different processes (or threads) aggregate to the same totals regardless of
completion order.

Instrument kinds
----------------
``counter``
    Monotonic accumulator (int or float).  Merge adds.  The canonical kind
    for event counts (``ingest.segments``, ``store.evictions``,
    ``match.kernel_rows``) and for accumulated wall time in seconds.
``gauge``
    A last-known level (``store.size``, ``pipeline.workers``).  Merge takes
    the **max** — the only order-independent choice that keeps "high water
    mark" semantics when worker snapshots arrive in nondeterministic order.
``histogram``
    Count / total / min / max of observed values (``dispatch.payload_bytes``
    per task).  Merge combines component-wise.

Naming convention: dot-separated ``subsystem.quantity`` (see the catalogue in
the README's Telemetry section).  Registries are cheap dictionaries; the hot
paths never touch them per segment — instrumentation happens at rank/stage
granularity, with totals recorded once per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricValue",
    "MetricsSnapshot",
    "MetricsRegistry",
    "merge_snapshots",
]

Number = Union[int, float]


class Counter:
    """Monotonic accumulator; merge adds."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, value: Number = 0) -> None:
        self.value = value

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def get(self) -> Number:
        return self.value


class Gauge:
    """Last-known level; merge takes the maximum (order-independent)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, value: Number = 0) -> None:
        self.value = value

    def set(self, value: Number) -> None:
        self.value = value

    def get(self) -> Number:
        return self.value


class Histogram:
    """Count/total/min/max summary of observed values; merge combines."""

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True, slots=True)
class MetricValue:
    """One instrument's frozen state inside a snapshot.

    ``kind`` is ``"counter"``/``"gauge"``/``"histogram"``; counters and gauges
    use ``value``, histograms use the four summary fields.  Frozen so
    snapshots can cross pickle boundaries and be merged without aliasing the
    live registry.
    """

    kind: str
    value: Number = 0
    count: int = 0
    total: Number = 0
    min: Optional[Number] = None
    max: Optional[Number] = None

    def merged_with(self, other: "MetricValue") -> "MetricValue":
        if self.kind != other.kind:
            raise ValueError(
                f"cannot merge metric kinds {self.kind!r} and {other.kind!r}"
            )
        if self.kind == "counter":
            return MetricValue(kind="counter", value=self.value + other.value)
        if self.kind == "gauge":
            return MetricValue(kind="gauge", value=max(self.value, other.value))
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        return MetricValue(
            kind="histogram",
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(mins) if mins else None,
            max=max(maxs) if maxs else None,
        )

    def scalar(self) -> Number:
        """The single number a report shows for this instrument."""
        return self.total if self.kind == "histogram" else self.value

    def as_json(self) -> dict:
        if self.kind == "histogram":
            return {
                "kind": self.kind,
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
            }
        return {"kind": self.kind, "value": self.value}

    @classmethod
    def from_json(cls, payload: dict) -> "MetricValue":
        if payload["kind"] == "histogram":
            return cls(
                kind="histogram",
                count=payload["count"],
                total=payload["total"],
                min=payload["min"],
                max=payload["max"],
            )
        return cls(kind=payload["kind"], value=payload["value"])


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Immutable, picklable view of a registry, sorted by metric name.

    Name-sorted storage makes equality and merge results independent of the
    order instruments were first touched, which is what lets per-worker
    snapshots from a nondeterministic pool aggregate deterministically.
    """

    values: dict = field(default_factory=dict)

    def merged_with(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        merged = dict(self.values)
        for name, value in other.values.items():
            mine = merged.get(name)
            merged[name] = value if mine is None else mine.merged_with(value)
        return MetricsSnapshot(values=dict(sorted(merged.items())))

    def __bool__(self) -> bool:
        return bool(self.values)

    def get(self, name: str) -> Optional[MetricValue]:
        return self.values.get(name)

    def scalar(self, name: str, default: Number = 0) -> Number:
        value = self.values.get(name)
        return default if value is None else value.scalar()

    def as_json(self) -> dict:
        return {name: value.as_json() for name, value in self.values.items()}

    @classmethod
    def from_json(cls, payload: dict) -> "MetricsSnapshot":
        return cls(
            values={
                name: MetricValue.from_json(value)
                for name, value in sorted(payload.items())
            }
        )


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold any number of snapshots into one (order-independent totals)."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        merged = merged.merged_with(snapshot)
    return merged


class MetricsRegistry:
    """A process- or worker-local set of named instruments.

    Creation is idempotent per name, but a name is permanently bound to one
    instrument kind — asking for ``counter("x")`` after ``gauge("x")`` is a
    programming error and raises immediately rather than corrupting totals.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls()
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- convenience write paths ----------------------------------------------

    def inc(self, name: str, n: Number = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: Number) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        self.histogram(name).observe(value)

    # -- snapshot / merge -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> MetricsSnapshot:
        values: dict[str, MetricValue] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                values[name] = MetricValue(
                    kind="histogram",
                    count=metric.count,
                    total=metric.total,
                    min=metric.min,
                    max=metric.max,
                )
            else:
                values[name] = MetricValue(kind=metric.kind, value=metric.value)
        return MetricsSnapshot(values=values)

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot's totals into this registry (counters add, etc.)."""
        for name, value in snapshot.values.items():
            if value.kind == "counter":
                self.counter(name).inc(value.value)
            elif value.kind == "gauge":
                gauge = self.gauge(name)
                gauge.set(max(gauge.value, value.value))
            else:
                histogram = self.histogram(name)
                histogram.count += value.count
                histogram.total += value.total
                for bound in (value.min,):
                    if bound is not None and (histogram.min is None or bound < histogram.min):
                        histogram.min = bound
                for bound in (value.max,):
                    if bound is not None and (histogram.max is None or bound > histogram.max):
                        histogram.max = bound
