"""Workload registry and experiment scaling profiles.

The paper's exact runs (8/32 processes, long traces, a full Sweep3D problem)
would take a while to regenerate on every benchmark invocation, so every
experiment accepts an :class:`ExperimentScale`:

* ``paper``   — the paper's process counts and iteration counts;
* ``default`` — the same programs at reduced iteration counts / grid sizes
  (what the benchmark harness uses);
* ``smoke``   — tiny runs for unit tests.

The scale changes how *much* trace is generated, never the structure of the
programs, so the qualitative comparisons between methods are unaffected.
Select a scale globally through the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional

from repro.benchmarks_ats import (
    INTERFERENCE_PATTERNS,
    Workload,
    dyn_load_balance,
    early_gather,
    imbalance_at_mpi_barrier,
    interference,
    late_broadcast,
    late_receiver,
    late_sender,
)
from repro.evaluation.runner import PreparedWorkload
from repro.sweep3d import sweep3d_32p, sweep3d_8p

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "BENCHMARK_NAMES",
    "REGULAR_BENCHMARK_NAMES",
    "INTERFERENCE_BENCHMARK_NAMES",
    "SWEEP3D_NAMES",
    "ALL_WORKLOAD_NAMES",
    "build_workload",
    "prepared_workload",
    "prepared_cache_size",
    "clear_workload_cache",
]


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """How much trace to generate for each workload family."""

    name: str
    benchmark_nprocs: int
    benchmark_iterations: int
    interference_nprocs: int
    interference_iterations: int
    sweep3d_8p_scale: float
    sweep3d_8p_timesteps: int
    sweep3d_32p_scale: float
    sweep3d_32p_timesteps: int
    seed: int = 0


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        benchmark_nprocs=4,
        benchmark_iterations=8,
        interference_nprocs=4,
        interference_iterations=10,
        sweep3d_8p_scale=0.2,
        sweep3d_8p_timesteps=2,
        sweep3d_32p_scale=0.1,
        sweep3d_32p_timesteps=1,
    ),
    "default": ExperimentScale(
        name="default",
        benchmark_nprocs=8,
        benchmark_iterations=60,
        interference_nprocs=16,
        interference_iterations=60,
        sweep3d_8p_scale=0.5,
        sweep3d_8p_timesteps=4,
        sweep3d_32p_scale=0.25,
        sweep3d_32p_timesteps=3,
    ),
    "paper": ExperimentScale(
        name="paper",
        benchmark_nprocs=8,
        benchmark_iterations=100,
        interference_nprocs=32,
        interference_iterations=100,
        sweep3d_8p_scale=1.0,
        sweep3d_8p_timesteps=6,
        sweep3d_32p_scale=1.0,
        sweep3d_32p_timesteps=4,
    ),
}


def get_scale(name: Optional[str] = None) -> ExperimentScale:
    """Return a scale profile by name.

    When ``name`` is None the ``REPRO_SCALE`` environment variable is
    consulted, falling back to ``"default"``.
    """
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    if name not in SCALES:
        raise ValueError(f"unknown scale {name!r}; expected one of {sorted(SCALES)}")
    return SCALES[name]


REGULAR_BENCHMARK_NAMES: tuple[str, ...] = (
    "late_sender",
    "late_receiver",
    "early_gather",
    "late_broadcast",
    "imbalance_at_mpi_barrier",
)

INTERFERENCE_BENCHMARK_NAMES: tuple[str, ...] = tuple(
    f"{pattern}_{simulated}"
    for simulated in (32, 1024)
    for pattern in INTERFERENCE_PATTERNS
)

#: The 16 benchmark programs of the paper (everything except Sweep3D).
BENCHMARK_NAMES: tuple[str, ...] = (
    "dyn_load_balance",
    *REGULAR_BENCHMARK_NAMES,
    *INTERFERENCE_BENCHMARK_NAMES,
)

SWEEP3D_NAMES: tuple[str, ...] = ("sweep3d_8p", "sweep3d_32p")

ALL_WORKLOAD_NAMES: tuple[str, ...] = (*BENCHMARK_NAMES, *SWEEP3D_NAMES)


def _regular_factory(fn: Callable[..., Workload]) -> Callable[[ExperimentScale], Workload]:
    def build(scale: ExperimentScale) -> Workload:
        return fn(
            nprocs=scale.benchmark_nprocs,
            iterations=scale.benchmark_iterations,
            seed=scale.seed,
        )

    return build


def _interference_factory(pattern: str, simulated: int) -> Callable[[ExperimentScale], Workload]:
    def build(scale: ExperimentScale) -> Workload:
        return interference(
            pattern,
            simulated,
            nprocs=scale.interference_nprocs,
            iterations=scale.interference_iterations,
            seed=scale.seed,
        )

    return build


_FACTORIES: dict[str, Callable[[ExperimentScale], Workload]] = {
    "dyn_load_balance": lambda scale: dyn_load_balance(
        nprocs=scale.benchmark_nprocs,
        iterations=scale.benchmark_iterations,
        seed=scale.seed,
    ),
    "late_sender": _regular_factory(late_sender),
    "late_receiver": _regular_factory(late_receiver),
    "early_gather": _regular_factory(early_gather),
    "late_broadcast": _regular_factory(late_broadcast),
    "imbalance_at_mpi_barrier": _regular_factory(imbalance_at_mpi_barrier),
    "sweep3d_8p": lambda scale: sweep3d_8p(
        scale=scale.sweep3d_8p_scale,
        timesteps=scale.sweep3d_8p_timesteps,
        seed=scale.seed,
    ),
    "sweep3d_32p": lambda scale: sweep3d_32p(
        scale=scale.sweep3d_32p_scale,
        timesteps=scale.sweep3d_32p_timesteps,
        seed=scale.seed,
    ),
}
for _pattern in INTERFERENCE_PATTERNS:
    for _simulated in (32, 1024):
        _FACTORIES[f"{_pattern}_{_simulated}"] = _interference_factory(_pattern, _simulated)


def build_workload(name: str, scale: ExperimentScale | str | None = None) -> Workload:
    """Build one of the paper's workloads at the given scale."""
    if isinstance(scale, str) or scale is None:
        scale = get_scale(scale)
    if name not in _FACTORIES:
        raise ValueError(f"unknown workload {name!r}; expected one of {ALL_WORKLOAD_NAMES}")
    return _FACTORIES[name](scale)


# Prepared workloads (simulated, segmented, analyzed) are memoized per
# (workload, scale) because every figure, table, and sweep grid re-uses the
# same full trace: a multi-method study prepares each workload once, however
# many methods and thresholds it evaluates.  The key is the *full* scale
# profile (ExperimentScale is frozen and hashable), not just its name, so two
# custom profiles that happen to share a name can never alias each other's
# traces.
_PREPARED_CACHE: dict[tuple[str, ExperimentScale], PreparedWorkload] = {}


def prepared_workload(name: str, scale: ExperimentScale | str | None = None) -> PreparedWorkload:
    """Return (and memoize) the shared evaluation artefacts for one workload."""
    if isinstance(scale, str) or scale is None:
        scale = get_scale(scale)
    key = (name, scale)
    if key not in _PREPARED_CACHE:
        _PREPARED_CACHE[key] = PreparedWorkload.from_workload(build_workload(name, scale))
    return _PREPARED_CACHE[key]


def prepared_cache_size() -> int:
    """Number of (workload, scale) entries currently memoized."""
    return len(_PREPARED_CACHE)


def clear_workload_cache() -> None:
    """Drop all cached prepared workloads (mainly for tests)."""
    _PREPARED_CACHE.clear()
