"""Comparative study at the paper's default thresholds (Figures 5–8).

Every method is run with the best threshold found by the threshold study
(Section 5.1): relDiff 0.8, absDiff 1000 µs, Manhattan 0.4, Euclidean 0.2,
Chebyshev 0.2, iter_k 10, avgWave 0.2, haarWave 0.2, plus iter_avg.

By default all methods of one workload are reduced in a **single shared
pass** through the sweep engine (one segment stream, feature vectors shared
within each family — e.g. the three Minkowski methods); ``backend="serial"``
keeps the historical per-method loop as the oracle.  Both produce identical
results.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.cube import severity_chart
from repro.analysis.expert import analyze
from repro.analysis.patterns import EXECUTION_TIME, LATE_SENDER, WAIT_AT_NXN
from repro.core.metrics import METRIC_NAMES, create_metric
from repro.core.reconstruct import reconstruct
from repro.core.reducer import TraceReducer
from repro.evaluation.runner import EvaluationResult, evaluate_grid, evaluate_method
from repro.experiments.config import (
    ALL_WORKLOAD_NAMES,
    ExperimentScale,
    get_scale,
    prepared_workload,
)

__all__ = [
    "comparative_study",
    "fig5_size_and_matching",
    "fig6_approximation_distance",
    "fig7_dyn_load_balance_trends",
    "fig8_interference_trends",
    "trend_chart_for_methods",
]


def comparative_study(
    workloads: Optional[Sequence[str]] = None,
    methods: Optional[Sequence[str]] = None,
    *,
    scale: ExperimentScale | str | None = None,
    backend: str = "sweep",
) -> list[EvaluationResult]:
    """Evaluate every method at its default threshold on every workload.

    ``backend="sweep"`` (the default) reduces all methods of one workload in
    a single shared segment pass; ``backend="serial"`` runs the historical
    one-method-at-a-time oracle loop.
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    workloads = tuple(workloads) if workloads is not None else ALL_WORKLOAD_NAMES
    methods = tuple(methods) if methods is not None else METRIC_NAMES
    if backend == "serial":
        results: list[EvaluationResult] = []
        for name in workloads:
            prepared = prepared_workload(name, scale)
            for method in methods:
                results.append(evaluate_method(prepared, create_metric(method)))
        return results
    from repro.sweep.plan import SweepConfig, SweepPlan

    # One config per *distinct* method; repeated names in ``methods`` re-use
    # the same row, mirroring the serial loop's one-result-per-entry shape.
    keys = [(method, create_metric(method).threshold) for method in methods]
    plan = SweepPlan(SweepConfig(m, t) for m, t in dict.fromkeys(keys))
    results = []
    for name in workloads:
        prepared = prepared_workload(name, scale)
        rows = evaluate_grid(prepared, plan, keep_comparison=True, backend=backend)
        by_key = {config.key: row for config, row in zip(plan.configs, rows)}
        results.extend(by_key[key] for key in keys)
    return results


def fig5_size_and_matching(
    workloads: Optional[Sequence[str]] = None,
    methods: Optional[Sequence[str]] = None,
    *,
    scale: ExperimentScale | str | None = None,
) -> list[dict]:
    """Figure 5: percentage file sizes and degree of matching per workload/method."""
    rows = []
    for result in comparative_study(workloads, methods, scale=scale):
        rows.append(
            {
                "workload": result.workload,
                "method": result.method,
                "pct_file_size": result.pct_file_size,
                "degree_of_matching": result.degree_of_matching,
            }
        )
    return rows


def fig6_approximation_distance(
    workloads: Optional[Sequence[str]] = None,
    methods: Optional[Sequence[str]] = None,
    *,
    scale: ExperimentScale | str | None = None,
) -> list[dict]:
    """Figure 6: approximation distance per workload/method at default thresholds."""
    rows = []
    for result in comparative_study(workloads, methods, scale=scale):
        rows.append(
            {
                "workload": result.workload,
                "method": result.method,
                "approx_distance_us": result.approx_distance_us,
                "trends_retained": result.trends_retained,
            }
        )
    return rows


def trend_chart_for_methods(
    workload_name: str,
    entries: Sequence[tuple[str, str]],
    methods: Optional[Iterable[str]] = None,
    *,
    scale: ExperimentScale | str | None = None,
) -> dict[str, str]:
    """KOJAK-style severity charts for the full trace and every reduced trace.

    Returns a mapping ``{"full trace": chart, "<method>": chart, ...}`` where
    each chart shows the requested (metric, location) entries with one
    severity level per process — the textual equivalent of Figures 7 and 8.
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    methods = tuple(methods) if methods is not None else METRIC_NAMES
    prepared = prepared_workload(workload_name, scale)
    charts: dict[str, str] = {
        "full trace": severity_chart(prepared.full_report, entries, title="full trace")
    }
    for method in methods:
        metric = create_metric(method)
        reduced = TraceReducer(metric).reduce(prepared.segmented)
        reconstructed = reconstruct(reduced)
        report = analyze(reconstructed)
        charts[method] = severity_chart(report, entries, title=metric.describe())
    return charts


def fig7_dyn_load_balance_trends(
    methods: Optional[Iterable[str]] = None,
    *,
    scale: ExperimentScale | str | None = None,
) -> dict[str, str]:
    """Figure 7: performance trends for dyn_load_balance under every method.

    The paper shows the "Wait at N×N" severity in ``MPI_Alltoall`` and the
    execution-time disparity in ``do_work``.
    """
    entries = [
        (WAIT_AT_NXN, "MPI_Alltoall"),
        (EXECUTION_TIME, "do_work"),
    ]
    return trend_chart_for_methods("dyn_load_balance", entries, methods, scale=scale)


def fig8_interference_trends(
    methods: Optional[Iterable[str]] = None,
    *,
    scale: ExperimentScale | str | None = None,
    workload_name: str = "1to1r_1024",
) -> dict[str, str]:
    """Figure 8: performance trends for the 1to1r_1024 interference benchmark.

    The paper shows the point-to-point wait state plus the per-function times
    of the send/receive calls and ``do_work``.
    """
    entries = [
        (LATE_SENDER, "MPI_Recv"),
        (EXECUTION_TIME, "MPI_Recv"),
        (EXECUTION_TIME, "do_work"),
    ]
    return trend_chart_for_methods(workload_name, entries, methods, scale=scale)
