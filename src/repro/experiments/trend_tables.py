"""Retention-of-trends tables (Tables 1–18 of the paper's appendix).

For one workload, every method is run at every threshold of the threshold
study (plus ``iter_avg``) and the cell records whether the reduced trace still
leads to the same performance diagnosis as the full trace.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.metrics import THRESHOLD_STUDY, create_metric
from repro.evaluation.runner import evaluate_method
from repro.experiments.config import (
    BENCHMARK_NAMES,
    SWEEP3D_NAMES,
    ExperimentScale,
    get_scale,
    prepared_workload,
)

__all__ = ["TREND_TABLE_INDEX", "trend_table", "trend_table_rows"]

#: Paper table number -> workload, in the order the appendix lists them.
TREND_TABLE_INDEX: dict[int, str] = {
    1: "dyn_load_balance",
    2: "early_gather",
    3: "imbalance_at_mpi_barrier",
    4: "late_broadcast",
    5: "late_receiver",
    6: "late_sender",
    7: "Nto1_32",
    8: "NtoN_32",
    9: "1toN_32",
    10: "1to1r_32",
    11: "1to1s_32",
    12: "Nto1_1024",
    13: "NtoN_1024",
    14: "1toN_1024",
    15: "1to1r_1024",
    16: "1to1s_1024",
    17: "sweep3d_8p",
    18: "sweep3d_32p",
}

assert set(TREND_TABLE_INDEX.values()) == set(BENCHMARK_NAMES) | set(SWEEP3D_NAMES)


def trend_table(
    workload_name: str,
    methods: Optional[Sequence[str]] = None,
    *,
    thresholds_per_method: Optional[dict[str, Sequence[float]]] = None,
    scale: ExperimentScale | str | None = None,
) -> dict[str, dict[Optional[float], bool]]:
    """Retention of performance trends for one workload.

    Returns ``{method: {threshold: retained}}``; ``iter_avg`` uses the single
    key ``None``.
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    methods = tuple(methods) if methods is not None else (*THRESHOLD_STUDY, "iter_avg")
    prepared = prepared_workload(workload_name, scale)
    table: dict[str, dict[Optional[float], bool]] = {}
    for method in methods:
        if method == "iter_avg":
            result = evaluate_method(prepared, create_metric("iter_avg"), keep_comparison=False)
            table[method] = {None: result.trends_retained}
            continue
        thresholds: Sequence[float]
        if thresholds_per_method and method in thresholds_per_method:
            thresholds = thresholds_per_method[method]
        else:
            thresholds = THRESHOLD_STUDY[method]
        cells: dict[Optional[float], bool] = {}
        for threshold in thresholds:
            metric = create_metric(method, threshold)
            result = evaluate_method(prepared, metric, keep_comparison=False)
            cells[float(threshold)] = result.trends_retained
        table[method] = cells
    return table


def trend_table_rows(
    workload_name: str,
    methods: Optional[Sequence[str]] = None,
    *,
    thresholds_per_method: Optional[dict[str, Sequence[float]]] = None,
    scale: ExperimentScale | str | None = None,
) -> list[dict]:
    """Flat rows (workload, method, threshold, retained)."""
    rows = []
    table = trend_table(
        workload_name, methods, thresholds_per_method=thresholds_per_method, scale=scale
    )
    for method, cells in table.items():
        for threshold, retained in cells.items():
            rows.append(
                {
                    "workload": workload_name,
                    "method": method,
                    "threshold": threshold,
                    "retained": retained,
                }
            )
    return rows
