"""Threshold study (Section 5.1, Figures 9–19).

For each method, the matching threshold is swept over the paper's values and
the file-size and approximation-distance criteria are recorded for every
workload — the data behind the per-method appendix figures.

The sweep runs through the shared-ingest sweep engine by default: per
workload, every threshold is evaluated in a **single pass** over the
segments, with the method's feature vectors computed once per segment for
the whole grid.  ``backend="serial"`` keeps the historical one-pass-per-
threshold loop as the oracle; both backends produce identical rows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.metrics import THRESHOLD_STUDY
from repro.evaluation.runner import EvaluationResult, evaluate_grid
from repro.experiments.config import (
    BENCHMARK_NAMES,
    ExperimentScale,
    get_scale,
    prepared_workload,
)
from repro.sweep.plan import SweepPlan

__all__ = ["threshold_study", "threshold_study_rows"]


def threshold_study(
    method: str,
    workloads: Optional[Sequence[str]] = None,
    thresholds: Optional[Sequence[float]] = None,
    *,
    scale: ExperimentScale | str | None = None,
    backend: str = "sweep",
) -> dict[str, list[EvaluationResult]]:
    """Sweep a method's threshold over every workload.

    Returns ``{workload name: [result per threshold, in threshold order]}``.
    ``backend`` selects the shared-ingest sweep engine (``"sweep"``, the
    default) or the serial per-threshold oracle loop (``"serial"``).
    """
    if method == "iter_avg":
        raise ValueError("iter_avg takes no threshold and is not part of the threshold study")
    if method not in THRESHOLD_STUDY:
        raise ValueError(
            f"unknown method {method!r}; expected one of {sorted(THRESHOLD_STUDY)}"
        )
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    workloads = tuple(workloads) if workloads is not None else BENCHMARK_NAMES
    thresholds = tuple(thresholds) if thresholds is not None else THRESHOLD_STUDY[method]
    # The grid evaluates each distinct threshold once; repeated values in the
    # caller's sequence re-use the same row, preserving the documented
    # one-result-per-requested-threshold shape.
    plan = SweepPlan((method, float(t)) for t in dict.fromkeys(float(t) for t in thresholds))

    results: dict[str, list[EvaluationResult]] = {}
    for name in workloads:
        prepared = prepared_workload(name, scale)
        rows = evaluate_grid(prepared, plan, keep_comparison=False, backend=backend)
        by_key = {config.key: row for config, row in zip(plan.configs, rows)}
        results[name] = [by_key[(method, float(t))] for t in thresholds]
    return results


def threshold_study_rows(
    method: str,
    workloads: Optional[Sequence[str]] = None,
    thresholds: Optional[Sequence[float]] = None,
    *,
    scale: ExperimentScale | str | None = None,
) -> list[dict]:
    """Flat rows (workload, threshold, % file size, approximation distance)."""
    rows = []
    for workload, results in threshold_study(
        method, workloads, thresholds, scale=scale
    ).items():
        for result in results:
            rows.append(
                {
                    "workload": workload,
                    "method": method,
                    "threshold": result.threshold,
                    "pct_file_size": result.pct_file_size,
                    "approx_distance_us": result.approx_distance_us,
                    "degree_of_matching": result.degree_of_matching,
                }
            )
    return rows
