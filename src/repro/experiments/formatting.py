"""Turning experiment results into the text tables the benches print."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.evaluation.runner import EvaluationResult
from repro.util.tables import format_matrix, format_table

__all__ = [
    "format_comparative_results",
    "format_rows",
    "format_threshold_rows",
    "format_trend_table",
]


def format_rows(rows: Sequence[Mapping[str, object]], *, title: Optional[str] = None) -> str:
    """Render a list of uniform dict rows as a table (keys become headers)."""
    if not rows:
        return title or "(no rows)"
    headers = list(rows[0].keys())
    body = [[row[h] for h in headers] for row in rows]
    return format_table(headers, body, title=title)


def format_comparative_results(
    results: Sequence[EvaluationResult], *, title: Optional[str] = None
) -> str:
    """Render evaluation results with all four criteria."""
    headers = [
        "workload",
        "method",
        "threshold",
        "% file size",
        "matching",
        "approx dist (us)",
        "trends",
    ]
    rows = [r.as_row() for r in results]
    return format_table(headers, rows, title=title)


def format_threshold_rows(rows: Sequence[Mapping[str, object]], *, title: Optional[str] = None) -> str:
    """Render threshold-study rows grouped by workload."""
    return format_rows(rows, title=title)


def format_trend_table(
    table: Mapping[str, Mapping[Optional[float], bool]], *, title: Optional[str] = None
) -> str:
    """Render a retention-of-trends table: methods × thresholds."""
    row_labels = list(table.keys())
    col_set: list[str] = []
    values: dict[tuple[str, str], object] = {}
    for method, cells in table.items():
        for threshold, retained in cells.items():
            col = "-" if threshold is None else f"{threshold:g}"
            if col not in col_set:
                col_set.append(col)
            values[(method, col)] = "yes" if retained else "NO"
    return format_matrix(row_labels, col_set, values, corner="method \\ threshold", title=title)
