"""Experiment definitions: every figure and table of the paper's evaluation.

* :mod:`repro.experiments.config` — workload registry and scaling profiles;
* :mod:`repro.experiments.comparative` — the comparative study at the paper's
  default thresholds (Figures 5–8);
* :mod:`repro.experiments.thresholds` — the threshold study (Figures 9–19);
* :mod:`repro.experiments.trend_tables` — retention-of-trends tables
  (Tables 1–18);
* :mod:`repro.experiments.formatting` — turning results into the text tables
  printed by the benchmark harness.
"""

from repro.experiments.config import (
    ALL_WORKLOAD_NAMES,
    BENCHMARK_NAMES,
    SWEEP3D_NAMES,
    ExperimentScale,
    build_workload,
    clear_workload_cache,
    get_scale,
    prepared_workload,
)
from repro.experiments.comparative import (
    comparative_study,
    fig5_size_and_matching,
    fig6_approximation_distance,
    fig7_dyn_load_balance_trends,
    fig8_interference_trends,
    trend_chart_for_methods,
)
from repro.experiments.thresholds import threshold_study, threshold_study_rows
from repro.experiments.trend_tables import TREND_TABLE_INDEX, trend_table

__all__ = [
    "ExperimentScale",
    "get_scale",
    "build_workload",
    "prepared_workload",
    "clear_workload_cache",
    "BENCHMARK_NAMES",
    "SWEEP3D_NAMES",
    "ALL_WORKLOAD_NAMES",
    "comparative_study",
    "fig5_size_and_matching",
    "fig6_approximation_distance",
    "fig7_dyn_load_balance_trends",
    "fig8_interference_trends",
    "trend_chart_for_methods",
    "threshold_study",
    "threshold_study_rows",
    "trend_table",
    "TREND_TABLE_INDEX",
]
