"""repro — similarity-based trace reduction for scalable performance analysis.

A from-scratch reproduction of Mohror & Karavanic, *"Evaluating
Similarity-based Trace Reduction Techniques for Scalable Performance
Analysis"* (2009): event tracing of message-passing programs, segment-based
intra-process trace reduction under nine similarity metrics, reconstruction of
approximate full traces, and the paper's four evaluation criteria, together
with the benchmark programs (APART-style and Sweep3D) the paper evaluates on.

Quick start
-----------
>>> from repro import benchmarks_ats, evaluation
>>> workload = benchmarks_ats.late_sender(nprocs=4, iterations=10)
>>> results = evaluation.evaluate_workload(workload, ["avgWave", "iter_avg"])
>>> [r.method for r in results]
['avgWave', 'iter_avg']

The public API is organised in subpackages:

* :mod:`repro.trace`          — events, segments, traces, serialization
* :mod:`repro.simulator`      — the MPI execution simulator (program model,
  machine model, noise, engine)
* :mod:`repro.benchmarks_ats` — benchmark programs with known behaviour
* :mod:`repro.sweep3d`        — the Sweep3D wavefront application model
* :mod:`repro.core`           — the trace reducer and the nine similarity
  metrics (the paper's contribution)
* :mod:`repro.analysis`       — EXPERT-style wait-state analysis and the
  trend-retention comparison
* :mod:`repro.evaluation`     — the four evaluation criteria and study runner
* :mod:`repro.experiments`    — every figure/table of the paper as a callable
"""

from repro import analysis, benchmarks_ats, core, evaluation, experiments, simulator, sweep3d, trace
from repro.core import DEFAULT_THRESHOLDS, METRIC_NAMES, create_metric, reduce_trace, reconstruct
from repro.core.reducer import TraceReducer
from repro.evaluation import evaluate_method, evaluate_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "trace",
    "simulator",
    "benchmarks_ats",
    "sweep3d",
    "core",
    "analysis",
    "evaluation",
    "experiments",
    "METRIC_NAMES",
    "DEFAULT_THRESHOLDS",
    "create_metric",
    "TraceReducer",
    "reduce_trace",
    "reconstruct",
    "evaluate_method",
    "evaluate_workload",
]
