"""Streaming ingestion: uniform per-rank segment streams from any source.

The pipeline engine consumes ``(rank, segment iterator)`` pairs.  This module
produces them from the places a trace can live:

* an in-memory :class:`~repro.trace.trace.SegmentedTrace` (already segmented);
* an in-memory raw :class:`~repro.trace.trace.Trace` (segmented lazily);
* a **text** trace file on disk (parsed *and* segmented lazily, line by line,
  via the chunked readers in :mod:`repro.trace.io` — the whole trace is never
  materialized, but streams must be consumed in file order);
* an **indexed** trace file (``.rpb``): each rank decodes independently from
  its byte range, so streams may be consumed in any order — and a worker
  process can open the file itself and decode exactly one rank
  (:func:`shard_segment_stream`), which is how the engine ships
  ``(path, rank)`` shard tasks instead of pickled rank payloads.

Segments are produced one at a time, so a consumer that also processes them
one at a time (the serial executor path) runs in memory bounded by the
largest single segment plus the representative store.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.core.frames import RankFrame
from repro.core.frametrace import FrameTrace
from repro.trace.formats import resolve_format
from repro.trace.segments import Segment, iter_segments
from repro.trace.trace import SegmentedTrace, Trace

__all__ = [
    "SegmentSource",
    "rank_segment_streams",
    "rank_frame_streams",
    "source_name",
    "indexed_source_ranks",
    "shard_segment_stream",
    "shard_frame",
]

#: Anything the pipeline can ingest.
SegmentSource = Union[SegmentedTrace, FrameTrace, Trace, str, Path]


def indexed_source_ranks(source: SegmentSource) -> Optional[list[int]]:
    """Rank ids of an indexed (random-access) file source, else ``None``.

    ``None`` means the source is in-memory or a forward-only file; a list
    means every listed rank can be decoded independently via
    :func:`shard_segment_stream`.
    """
    if not isinstance(source, (str, Path)):
        return None
    fmt = resolve_format(source)
    if fmt.rank_ids is None:
        return None
    return fmt.rank_ids(Path(source))


def shard_segment_stream(path: str | Path, rank: int) -> Iterator[Segment]:
    """Decode one rank of an indexed trace file straight to segments.

    This is the unit of work a ``(path, rank)`` shard task performs inside a
    pool worker: open the file, seek to the rank's byte range, decode.
    """
    fmt = resolve_format(path)
    if fmt.rank_segments is None:
        raise ValueError(
            f"trace format {fmt.name!r} is not indexed; {path} cannot be "
            "decoded rank-by-rank"
        )
    return fmt.rank_segments(Path(path), rank)


def shard_frame(path: str | Path, rank: int) -> RankFrame:
    """Decode one rank of an indexed trace file into a columnar frame.

    The columnar counterpart of :func:`shard_segment_stream` — what a
    ``(path, rank)`` shard task runs inside a pool worker on the frame path.
    Formats without a native frame decoder fall back through their segment
    decoder and the segments→frame adapter.
    """
    fmt = resolve_format(path)
    if fmt.rank_frame is not None:
        return fmt.rank_frame(Path(path), rank)
    return RankFrame.from_segments(rank, shard_segment_stream(path, rank))


def rank_frame_streams(source: SegmentSource) -> Iterator[Tuple[int, RankFrame]]:
    """Yield ``(rank, RankFrame)`` pairs for any supported source.

    The columnar counterpart of :func:`rank_segment_streams`: ``.rpb`` files
    decode straight into frames (no ``Segment`` objects), while in-memory
    traces and forward-only text files adapt through
    :meth:`RankFrame.from_segments` — so every engine runs one code path
    regardless of where the trace lives.
    """
    if isinstance(source, FrameTrace):
        # Already columnar: hand the frames over as-is (no adapter pass).
        for rank_trace in source.ranks:
            yield rank_trace.rank, rank_trace.frame
        return
    if isinstance(source, (str, Path)):
        path = Path(source)
        fmt = resolve_format(path)
        if fmt.rank_frame is not None and fmt.rank_ids is not None:
            for rank in fmt.rank_ids(path):
                yield rank, fmt.rank_frame(path, rank)
            return
    for rank, segments in rank_segment_streams(source):
        yield rank, RankFrame.from_segments(rank, segments)


def rank_segment_streams(
    source: SegmentSource,
) -> Iterator[Tuple[int, Iterable[Segment]]]:
    """Yield ``(rank, segment stream)`` pairs for any supported source.

    Streams are yielded in rank order (the order ranks appear in the trace).
    For forward-only (text) file sources each rank's stream must be consumed
    before advancing to the next pair; indexed file sources have no such
    constraint.
    """
    if isinstance(source, (SegmentedTrace, FrameTrace)):
        for rank_trace in source.ranks:
            # Already materialized (or materializable on access for frame
            # traces): yield the list itself so consumers that need a
            # sequence (the pooled engine path) need not copy it.
            yield rank_trace.rank, rank_trace.segments
    elif isinstance(source, Trace):
        for rank_trace in source.ranks:
            yield rank_trace.rank, iter_segments(rank_trace.records)
    elif isinstance(source, (str, Path)):
        path = Path(source)
        fmt = resolve_format(path)
        if fmt.rank_segments is not None and fmt.rank_ids is not None:
            for rank in fmt.rank_ids(path):
                yield rank, fmt.rank_segments(path, rank)
        else:
            for rank, records in fmt.rank_streams(path):
                yield rank, iter_segments(records)
    else:
        raise TypeError(
            "segment source must be a SegmentedTrace, a Trace, or a trace file "
            f"path; got {type(source).__name__}"
        )


def source_name(source: SegmentSource) -> str:
    """Best-effort trace name for a source (file stem for paths)."""
    if isinstance(source, (SegmentedTrace, FrameTrace, Trace)):
        return source.name
    return Path(source).stem
