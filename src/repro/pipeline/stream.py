"""Streaming ingestion: uniform per-rank segment streams from any source.

The pipeline engine consumes ``(rank, segment iterator)`` pairs.  This module
produces them from the three places a trace can live:

* an in-memory :class:`~repro.trace.trace.SegmentedTrace` (already segmented);
* an in-memory raw :class:`~repro.trace.trace.Trace` (segmented lazily);
* a trace file on disk (parsed *and* segmented lazily, line by line, via the
  chunked readers in :mod:`repro.trace.io` — the whole trace is never
  materialized).

Segments are produced one at a time by :func:`repro.trace.segments.iter_segments`,
so a consumer that also processes them one at a time (the serial executor
path) runs in memory bounded by the largest single segment plus the
representative store.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Tuple, Union

from repro.trace.io import iter_rank_record_streams
from repro.trace.segments import Segment, iter_segments
from repro.trace.trace import SegmentedTrace, Trace

__all__ = ["SegmentSource", "rank_segment_streams", "source_name"]

#: Anything the pipeline can ingest.
SegmentSource = Union[SegmentedTrace, Trace, str, Path]


def rank_segment_streams(
    source: SegmentSource,
) -> Iterator[Tuple[int, Iterable[Segment]]]:
    """Yield ``(rank, segment stream)`` pairs for any supported source.

    Streams are yielded in rank order (the order ranks appear in the trace).
    For file sources each rank's stream must be consumed before advancing to
    the next pair (the underlying reader is a single forward pass).
    """
    if isinstance(source, SegmentedTrace):
        for rank_trace in source.ranks:
            # Already materialized: yield the list itself so consumers that
            # need a sequence (the pooled engine path) need not copy it.
            yield rank_trace.rank, rank_trace.segments
    elif isinstance(source, Trace):
        for rank_trace in source.ranks:
            yield rank_trace.rank, iter_segments(rank_trace.records)
    elif isinstance(source, (str, Path)):
        for rank, records in iter_rank_record_streams(source):
            yield rank, iter_segments(records)
    else:
        raise TypeError(
            "segment source must be a SegmentedTrace, a Trace, or a trace file "
            f"path; got {type(source).__name__}"
        )


def source_name(source: SegmentSource) -> str:
    """Best-effort trace name for a source (file stem for paths)."""
    if isinstance(source, (SegmentedTrace, Trace)):
        return source.name
    return Path(source).stem


