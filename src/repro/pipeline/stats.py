"""Pipeline instrumentation: per-stage wall time, throughput, match rate.

Every pipeline run produces one :class:`PipelineStats`.  Stage timings are
accumulated with :func:`time_stage`; counters are filled in by the engine from
the per-rank reduction results and store counters.  ``rows()`` renders the
stats as (property, value) pairs for the CLI's table formatter.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.candidates import MatchCounters
from repro.pipeline.store import StoreCounters

__all__ = ["PipelineStats", "time_stage"]

#: Stage keys in reporting order.
STAGES = ("ingest", "reduce", "merge")


@dataclass(slots=True)
class PipelineStats:
    """Instrumentation of one pipeline run."""

    executor: str
    workers: int
    nprocs: int = 0
    n_segments: int = 0
    n_stored: int = 0
    n_matches: int = 0
    n_possible_matches: int = 0
    #: ``Segment`` objects actually built on the columnar path — the
    #: lazy-materialization saving is ``n_segments - segments_materialized``.
    segments_materialized: int = 0
    merged_stored: int = 0
    merged_duplicates: int = 0
    stage_seconds: dict = field(default_factory=dict)
    total_seconds: float = 0.0
    store: StoreCounters = field(default_factory=StoreCounters)
    match: MatchCounters = field(default_factory=MatchCounters)
    #: Executor named in the config; differs from ``executor`` when the
    #: engine auto-downgraded a one-worker pool to the serial path.
    requested_executor: str = ""
    #: How rank tasks reached the workers: ``inline`` (serial), ``shard``
    #: ((path, rank) tasks against an indexed file), ``fork`` (copy-on-write
    #: in-memory trace), or ``payload`` (pickled segment lists).
    dispatch: str = ""

    def __post_init__(self) -> None:
        # Telemetry attributes must never be empty strings: a plain serial
        # run requested exactly what it got, and serial work is by definition
        # dispatched inline.
        if not self.requested_executor:
            self.requested_executor = self.executor
        if not self.dispatch and self.executor == "serial":
            self.dispatch = "inline"

    @property
    def match_rate(self) -> float:
        """Matches / possible matches (the degree-of-matching criterion)."""
        if self.n_possible_matches == 0:
            return 1.0
        return self.n_matches / self.n_possible_matches

    @property
    def segments_per_second(self) -> float:
        """End-to-end throughput of the run."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.n_segments / self.total_seconds

    @property
    def downgraded(self) -> bool:
        """True when a pooled executor was auto-downgraded to serial."""
        return bool(self.requested_executor) and self.requested_executor != self.executor

    def rows(self) -> list[list]:
        """(property, value) rows for the CLI table."""
        executor_cell = f"{self.executor} x{self.workers}"
        if self.downgraded:
            executor_cell += f" (auto-downgraded from {self.requested_executor})"
        rows: list[list] = [
            ["executor", executor_cell],
            ["task dispatch", self.dispatch or "-"],
            ["ranks", self.nprocs],
            ["segments", self.n_segments],
            [
                "segments materialized (lazy)",
                f"{self.segments_materialized} of {self.n_segments} decoded",
            ],
            ["stored representatives", self.n_stored],
            ["match rate", f"{self.match_rate:.4f}"],
            ["store hits / lookups", f"{self.store.hits} / {self.store.lookups}"],
            ["store evictions", self.store.evictions],
            ["match kernel calls", self.match.calls],
            ["match kernel rows / call", f"{self.match.rows_per_call:.2f}"],
            [
                "match rows pruned",
                f"{self.match.rows_pruned} ({self.match.prune_rate:.1%})",
            ],
            ["match blocks evaluated", self.match.blocks_evaluated],
            ["match kernel wall time (s)", f"{self.match.seconds:.4f}"],
        ]
        if self.merged_stored or self.merged_duplicates:
            rows.append(["merged representatives", self.merged_stored])
            rows.append(["cross-rank duplicates", self.merged_duplicates])
        for stage in STAGES:
            if stage in self.stage_seconds:
                rows.append([f"{stage} wall time (s)", f"{self.stage_seconds[stage]:.4f}"])
        rows.append(["total wall time (s)", f"{self.total_seconds:.4f}"])
        rows.append(["segments / second", f"{self.segments_per_second:,.0f}"])
        return rows

    def record_to(self, registry) -> None:
        """Record this run's totals into an ``obs`` metrics registry.

        Called once per run by the engine, so the registry holds the same
        totals ``rows()`` renders — the stats object becomes a view over the
        run's metrics rather than a competing source of truth.
        """
        registry.set_gauge("pipeline.workers", self.workers)
        registry.set_gauge("pipeline.ranks", self.nprocs)
        registry.inc("pipeline.segments", self.n_segments)
        registry.inc("columnar.materialized", self.segments_materialized)
        registry.inc("pipeline.stored", self.n_stored)
        registry.inc("pipeline.matches", self.n_matches)
        registry.inc("pipeline.possible_matches", self.n_possible_matches)
        if self.merged_stored or self.merged_duplicates:
            registry.inc("merge.stored", self.merged_stored)
            registry.inc("merge.duplicates", self.merged_duplicates)
        for stage, seconds in self.stage_seconds.items():
            registry.inc(f"stage.{stage}.seconds", seconds)
        registry.inc("pipeline.total_seconds", self.total_seconds)
        self.store.record_to(registry)
        self.match.record_to(registry)


@contextmanager
def time_stage(stats: PipelineStats, stage: str):
    """Accumulate the wall time of the enclosed block into ``stats``."""
    started = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - started
        stats.stage_seconds[stage] = stats.stage_seconds.get(stage, 0.0) + elapsed
