"""Streaming parallel reduction pipeline.

The scaling subsystem on top of :mod:`repro.core`: streaming ingestion of
per-rank segment streams (:mod:`repro.pipeline.stream`), a worker-pool
reduction engine with deterministic, serial-identical output
(:mod:`repro.pipeline.engine`), bounded representative stores
(:mod:`repro.pipeline.store`), and per-stage instrumentation
(:mod:`repro.pipeline.stats`).

Quick use::

    from repro.core.metrics import create_metric
    from repro.pipeline import PipelineConfig, reduce_pipeline

    result = reduce_pipeline(trace, create_metric("relDiff"),
                             PipelineConfig(executor="process", workers=8))
    result.reduced   # byte-identical to TraceReducer(metric).reduce(trace)
    result.stats     # throughput, match rate, per-stage wall time
"""

from repro.pipeline.engine import (
    EXECUTORS,
    PipelineConfig,
    PipelineResult,
    ReductionPipeline,
    reduce_pipeline,
    sweep_pipeline,
)
from repro.pipeline.stats import PipelineStats
from repro.pipeline.store import LRUStore, RepresentativeStore, StoreCounters, UnboundedStore, create_store
from repro.pipeline.stream import rank_segment_streams, source_name

__all__ = [
    "EXECUTORS",
    "PipelineConfig",
    "PipelineResult",
    "ReductionPipeline",
    "reduce_pipeline",
    "sweep_pipeline",
    "PipelineStats",
    "RepresentativeStore",
    "UnboundedStore",
    "LRUStore",
    "StoreCounters",
    "create_store",
    "rank_segment_streams",
    "source_name",
]
