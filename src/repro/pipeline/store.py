"""Representative stores: the per-key candidate lists behind the reducer.

The serial reducer keeps an unbounded ``dict`` mapping each segment's
structural key to the list of stored representatives with that structure.  At
large rank counts and long traces that dictionary is the reducer's entire
memory footprint, so the pipeline makes it pluggable:

* :class:`UnboundedStore` — exactly the dictionary the reducer always kept;
  the default, and byte-identical to the historical behaviour.
* :class:`LRUStore` — a bounded store with configurable capacity (counted in
  stored representatives) and least-recently-used eviction at structural-key
  granularity.

Eviction never removes a representative from the *output* (segments already
emitted stay emitted; the reduced trace remains valid); it only removes the
representative from the match-candidate set, so later executions of an evicted
pattern store a fresh representative instead of matching.  Bounded stores
therefore trade a little compression for a hard memory ceiling.

Both stores count lookups, hits, misses, and evictions so the pipeline can
report candidate-store behaviour per run.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.candidates import CandidateList
from repro.core.reduced import StoredSegment
from repro.core.reducer import _InlineStore

__all__ = ["StoreCounters", "RepresentativeStore", "UnboundedStore", "LRUStore", "create_store"]

_EMPTY: tuple[StoredSegment, ...] = ()


@dataclass(slots=True)
class StoreCounters:
    """Lookup/eviction counters of one representative store."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def merged_with(self, other: "StoreCounters") -> "StoreCounters":
        """Combine counters from two stores (used to aggregate across ranks)."""
        return StoreCounters(
            lookups=self.lookups + other.lookups,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    @property
    def hit_rate(self) -> float:
        """Hits / lookups; 1.0 when nothing was looked up."""
        return self.hits / self.lookups if self.lookups else 1.0

    def record_to(self, registry) -> None:
        """Record these counters into an ``obs`` metrics registry.

        Takes the registry as a parameter so this module stays free of any
        telemetry import — callers pick the registry (run-global or a
        worker-local capture).
        """
        registry.inc("store.lookups", self.lookups)
        registry.inc("store.hits", self.hits)
        registry.inc("store.misses", self.misses)
        registry.inc("store.evictions", self.evictions)


class RepresentativeStore:
    """Interface the reducer talks to instead of its inline dictionary.

    ``candidates(key)`` returns the representatives that share the key's
    structure (possibly empty) and counts the lookup; ``add(key, stored)``
    registers a new representative under the key.  Implementations must keep
    each key's candidate list in insertion order — the paper's algorithm
    matches against representatives in the order they were first stored.
    """

    def __init__(self) -> None:
        self.counters = StoreCounters()

    def candidates(self, key: Hashable) -> Sequence[StoredSegment]:
        raise NotImplementedError

    def add(self, key: Hashable, stored: StoredSegment) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of representatives currently retained as match candidates."""
        raise NotImplementedError


class UnboundedStore(_InlineStore, RepresentativeStore):
    """The historical unbounded per-key candidate dictionary, plus counters.

    The storage semantics live in the reducer's :class:`_InlineStore` (the
    serial default); this class only layers the lookup counters on top, so
    the "byte-identical default path" behaviour has exactly one
    implementation.
    """

    def __init__(self) -> None:
        RepresentativeStore.__init__(self)
        _InlineStore.__init__(self)

    def candidates(self, key: Hashable) -> Sequence[StoredSegment]:
        # Reads the inline store's bucket dict directly rather than calling
        # _InlineStore.candidates: this is the innermost call of every
        # reduction, and the extra frame is measurable at sweep-grid scale.
        counters = self.counters
        counters.lookups += 1
        found = self._by_key.get(key)
        if found:
            counters.hits += 1
            return found
        counters.misses += 1
        return _EMPTY

    def __getstate__(self):
        """Explicit checkpoint state (buckets, size, counters).

        Spelled out (rather than relying on the default slots+dict protocol)
        so the session checkpoint format is stable against refactors of the
        class layout; bucket keys are rehashed on restore by dict
        reconstruction, which is what makes checkpoints portable across
        processes with different string-hash salts.
        """
        return {"by_key": self._by_key, "size": self._size, "counters": self.counters}

    def __setstate__(self, state):
        self.counters = state["counters"]
        self._by_key = state["by_key"]
        self._size = state["size"]


class LRUStore(RepresentativeStore):
    """Bounded store: at most ``capacity`` representatives, LRU-evicted.

    Recency is tracked per structural key (a lookup or insertion touches the
    key); when an insertion pushes the total representative count over
    ``capacity``, whole least-recently-used key buckets are evicted until the
    store fits again.  When everything lives under a single key (homogeneous
    traces — the hot path bounded stores exist for), the oldest
    representatives of that bucket are trimmed instead, so the capacity is a
    hard ceiling either way.  Candidate lists always remain in insertion
    order, as the matching algorithm's first-match semantics require.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LRUStore capacity must be >= 1, got {capacity}")
        super().__init__()
        self.capacity = int(capacity)
        self._by_key: OrderedDict[Hashable, CandidateList] = OrderedDict()
        self._size = 0

    def candidates(self, key: Hashable) -> Sequence[StoredSegment]:
        self.counters.lookups += 1
        found = self._by_key.get(key)
        if found:
            self._by_key.move_to_end(key)
            self.counters.hits += 1
            return found
        self.counters.misses += 1
        return _EMPTY

    def add(self, key: Hashable, stored: StoredSegment) -> None:
        bucket = self._by_key.get(key)
        if bucket is None:
            bucket = self._by_key[key] = CandidateList()
        else:
            self._by_key.move_to_end(key)
        bucket.append(stored)
        self._size += 1
        self._evict_over_capacity(bucket)

    def add_built(self, key: Hashable, stored: StoredSegment, metric, row) -> None:
        """Like :meth:`add`, with the representative's feature row pre-built.

        The columnar path's optional store hook — same recency/eviction
        semantics, but the bucket ingests the probe vector as its new matrix
        row instead of rebuilding it lazily.
        """
        bucket = self._by_key.get(key)
        if bucket is None:
            bucket = self._by_key[key] = CandidateList()
        else:
            self._by_key.move_to_end(key)
        bucket.append_built(stored, metric, row)
        self._size += 1
        self._evict_over_capacity(bucket)

    def __getstate__(self):
        """Explicit checkpoint state: capacity, recency-ordered buckets, counters."""
        return {
            "capacity": self.capacity,
            "by_key": self._by_key,
            "size": self._size,
            "counters": self.counters,
        }

    def __setstate__(self, state):
        self.counters = state["counters"]
        self.capacity = state["capacity"]
        self._by_key = state["by_key"]
        self._size = state["size"]

    def _evict_over_capacity(self, bucket: CandidateList) -> None:
        while self._size > self.capacity:
            if len(self._by_key) > 1:
                _, evicted = self._by_key.popitem(last=False)
                self._size -= len(evicted)
                self.counters.evictions += len(evicted)
            else:
                # Everything lives under one structural key (the homogeneous
                # hot path); trim its oldest representatives so the capacity
                # really is a hard ceiling.  trim_front also compacts the
                # bucket's matrix rows in place, keeping them contiguous.
                excess = self._size - self.capacity
                bucket.trim_front(excess)
                self._size -= excess
                self.counters.evictions += excess

    def __len__(self) -> int:
        return self._size


def create_store(capacity: int | None = None) -> RepresentativeStore:
    """Build the store a pipeline worker should use.

    ``capacity=None`` means unbounded (the byte-identical default path).
    """
    return UnboundedStore() if capacity is None else LRUStore(capacity)
