"""Parallel reduction engine: fan per-rank reduction out over a worker pool.

Intra-process reduction (Section 3.1) is embarrassingly parallel across ranks
— each rank's representative table is private — so the engine dispatches one
reduction task per rank to a :mod:`concurrent.futures` pool and reassembles
the per-rank results **in rank-stream order**.  Because the per-rank algorithm
is untouched and ordering is restored deterministically, the pipeline's output
serializes byte-identically to the serial :class:`~repro.core.reducer.TraceReducer`
path (the equivalence tests assert exactly that, for every similarity metric).

Executors
---------
``serial``
    No pool: each rank's stream is fed straight into the reducer, one segment
    at a time.  Memory is bounded by the representative store; this is the
    right mode for huge traces on small machines.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Cheap to start and
    shares memory, but similarity matching is mostly pure Python, so threads
    mainly help when metrics spend their time in NumPy.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` (the default).  Each
    worker builds its own representative store, so metric state never crosses
    rank boundaries — the same isolation the serial path provides.  For
    in-memory sources on platforms with ``fork``, the trace is shared with the
    workers copy-on-write and tasks carry only a rank index (zero-copy
    dispatch); otherwise rank payloads are pickled to the workers.

Task dispatch (recorded in ``PipelineStats.dispatch``)
------------------------------------------------------
``inline``
    The serial path: no pool, streams reduced in place.
``shard``
    Indexed file sources (``.rpb``): pooled workers receive ``(path, rank)``
    shard tasks and each opens the file and decodes only its rank's byte
    range — ingestion parallelises and no rank payload is ever pickled.
``fork``
    In-memory sources on fork platforms: workers inherit the trace
    copy-on-write and tasks carry only a rank index.
``payload``
    The fallback: each rank is materialized as a columnar frame and pickled
    to a worker (column arrays pack far tighter than segment-object lists).
    Submission is throttled to a bounded in-flight window so a trace with
    thousands of ranks never has every rank materialized at once.

Whatever the dispatch mode, every rank reaches the reducer as a
:class:`~repro.core.frames.RankFrame` — ``.rpb`` ranks decode straight to
columns, text and in-memory sources adapt through
``RankFrame.from_segments`` — so all executors run the one columnar code
path, with the segment-at-a-time reducer kept as the byte-identity oracle.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from pathlib import Path
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.core.candidates import MatchCounters
from repro.core.frames import RankFrame
from repro.core.metrics.base import SimilarityMetric
from repro.core.reduced import ReducedRankTrace, ReducedTrace
from repro.core.reducer import TraceReducer
from repro.pipeline.stats import PipelineStats, time_stage
from repro.pipeline.store import StoreCounters, create_store
from repro.pipeline.stream import (
    SegmentSource,
    indexed_source_ranks,
    rank_frame_streams,
    rank_segment_streams,
    shard_frame,
    source_name,
)
from repro.trace.segments import iter_segments
from repro.trace.trace import SegmentedRankTrace, SegmentedTrace, Trace
from repro.trace.merge import MergedReducedTrace, merge_reduced_trace

__all__ = [
    "PipelineConfig",
    "PipelineResult",
    "ReductionPipeline",
    "reduce_pipeline",
    "sweep_pipeline",
]

EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """How a :class:`ReductionPipeline` runs.

    Attributes
    ----------
    executor:
        ``"serial"``, ``"thread"``, or ``"process"`` (see module docstring).
    workers:
        Pool size; ``None`` means ``os.cpu_count()`` (ignored by ``serial``).
    store_capacity:
        Bound on representatives kept per rank (:class:`~repro.pipeline.store.LRUStore`);
        ``None`` keeps the unbounded, byte-identical default.
    merge:
        Run the inter-process merge (cross-rank representative dedup) as a
        final stage.
    max_pending:
        In-flight rank tasks for pooled executors; ``None`` means
        ``2 * workers``.  Bounds how many ranks' column frames exist at once.
    """

    executor: str = "process"
    workers: Optional[int] = None
    store_capacity: Optional[int] = None
    merge: bool = False
    max_pending: Optional[int] = None

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.store_capacity is not None and self.store_capacity < 1:
            raise ValueError(f"store_capacity must be >= 1, got {self.store_capacity}")
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")

    def resolved_workers(self) -> int:
        if self.executor == "serial":
            return 1
        return self.workers or os.cpu_count() or 1


@dataclass(slots=True)
class PipelineResult:
    """Everything one pipeline run produced."""

    reduced: ReducedTrace
    stats: PipelineStats
    merged: Optional[MergedReducedTrace] = None


#: What every rank task returns: the reduced rank, its store and match
#: counters, the number of ``Segment`` objects the columnar path actually
#: materialized, and — in telemetry capture mode — the worker's recorder
#: snapshot (``None`` otherwise), piggybacked so no extra IPC round-trip is
#: needed.
RankTaskResult = tuple[
    ReducedRankTrace, StoreCounters, MatchCounters, int, Optional[obs.RecorderSnapshot]
]


def _record_rank_metrics(
    registry: obs.MetricsRegistry,
    reduced: ReducedRankTrace,
    store_counters: StoreCounters,
    match_counters: MatchCounters,
    n_materialized: int,
) -> None:
    """Fill a worker-local registry with one rank's per-task metrics.

    Only called in capture mode: the parent keeps per-worker registries
    separate from the run totals (recorded once from the final stats), so
    nothing is ever double-counted.
    """
    registry.inc("ingest.segments", reduced.n_segments)
    registry.inc("columnar.materialized", n_materialized)
    registry.inc("reduce.stored", len(reduced.stored))
    registry.inc("reduce.matches", reduced.n_matches)
    store_counters.record_to(registry)
    match_counters.record_to(registry)


def _as_frame(rank: int, segments) -> RankFrame:
    """Adapt a rank task's input to a columnar frame (no-op for frames)."""
    if isinstance(segments, RankFrame):
        return segments
    return RankFrame.from_segments(rank, segments)


def _reduce_rank_inner(
    metric: SimilarityMetric,
    rank: int,
    frame: RankFrame,
    store_capacity: Optional[int],
) -> tuple[ReducedRankTrace, StoreCounters, MatchCounters, int]:
    store = create_store(store_capacity)
    match_counters = MatchCounters()
    with obs.span("rank.reduce", rank=rank):
        reduced = TraceReducer(metric).reduce_frame(
            frame, store=store, match_counters=match_counters
        )
    return reduced, store.counters, match_counters, frame.materialized


def _reduce_rank_task(
    metric: SimilarityMetric,
    rank: int,
    segments,
    store_capacity: Optional[int],
    capture: bool = False,
) -> RankTaskResult:
    """One worker task: reduce a single rank with its own store.

    ``segments`` may be a pre-built :class:`RankFrame` or any segment
    iterable (adapted here, so every dispatch mode converges on the columnar
    path).  Module-level so process pools can pickle it; the pickled
    ``metric`` gives every rank a private metric instance, mirroring serial
    semantics (metrics hold no cross-rank state).  With ``capture=True`` the
    task records its spans/metrics into a private recorder — shadowing any
    (orphaned, fork-inherited or thread-shared) ambient recorder — and
    returns the snapshot as the final element.
    """
    if not capture:
        frame = _as_frame(rank, segments)
        return (*_reduce_rank_inner(metric, rank, frame, store_capacity), None)
    recorder = obs.Recorder(label="worker")
    with obs.local_recording(recorder):
        frame = _as_frame(rank, segments)
        result = _reduce_rank_inner(metric, rank, frame, store_capacity)
    _record_rank_metrics(recorder.registry, *result)
    return (*result, recorder.snapshot())


def _reduce_shard_task(
    metric: SimilarityMetric,
    path: str,
    rank: int,
    store_capacity: Optional[int],
    capture: bool = False,
) -> RankTaskResult:
    """One worker task for indexed file sources: a ``(path, rank)`` shard.

    The task payload is just the file path and a rank id; the worker opens
    the file itself, seeks to the rank's byte range, and decodes its rank's
    column blocks straight into a frame — no rank data crosses the pickle
    boundary in either direction except the (much smaller) reduced result.

    In capture mode the frame is decoded under a ``shard.decode`` span
    before reducing, so the exported timeline separates decode from match
    time per shard.
    """
    if not capture:
        return _reduce_rank_task(metric, rank, shard_frame(path, rank), store_capacity)
    recorder = obs.Recorder(label="worker")
    with obs.local_recording(recorder):
        with obs.span("shard.decode", rank=rank):
            frame = shard_frame(path, rank)
        result = _reduce_rank_inner(metric, rank, frame, store_capacity)
    _record_rank_metrics(recorder.registry, *result)
    return (*result, recorder.snapshot())


#: In-memory trace inherited by fork()ed workers (set around pool creation).
#: Fork children see the parent's memory copy-on-write, so rank payloads never
#: cross a pickle boundary — tasks carry only a rank *index*.  The lock
#: serialises concurrent fork-path runs in one process: the global must stay
#: published until every worker has forked.
_FORK_SOURCE: Optional[SegmentSource] = None
_FORK_LOCK = threading.Lock()


def _reduce_fork_task(
    metric: SimilarityMetric,
    position: int,
    store_capacity: Optional[int],
    capture: bool = False,
) -> RankTaskResult:
    """Worker task for the fork-shared path: look the rank up by index.

    For a raw :class:`Trace` source the worker also does the segmentation, so
    that stage parallelises too.
    """
    rank_trace = _FORK_SOURCE.ranks[position]
    if isinstance(rank_trace, SegmentedRankTrace):
        segments = rank_trace.segments
    else:
        segments = iter_segments(rank_trace.records)
    return _reduce_rank_task(metric, rank_trace.rank, segments, store_capacity, capture)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ReductionPipeline:
    """Streaming, parallel intra-process reduction with instrumentation."""

    def __init__(self, metric: SimilarityMetric, config: Optional[PipelineConfig] = None):
        if not isinstance(metric, SimilarityMetric):
            raise TypeError(
                f"metric must be a SimilarityMetric, got {type(metric).__name__}"
            )
        self.metric = metric
        self.config = config or PipelineConfig()

    # -- public API -----------------------------------------------------------

    def reduce(self, source: SegmentSource, *, name: Optional[str] = None) -> PipelineResult:
        """Reduce any segment source (trace, segmented trace, or file path).

        A pooled executor whose effective worker count is 1 is auto-downgraded
        to the serial path: a one-worker pool reduces rank-by-rank anyway, so
        it can only add pool startup and IPC overhead (single-CPU runs showed
        0.80x "speedups").  The downgrade is recorded in the stats
        (``requested_executor`` vs ``executor``) and never changes output.
        """
        config = self.config
        workers = config.resolved_workers()
        executor = config.executor
        shard_ranks = indexed_source_ranks(source)
        if executor != "serial" and (
            workers == 1
            or (isinstance(source, (SegmentedTrace, Trace)) and len(source.ranks) <= 1)
            or (shard_ranks is not None and len(shard_ranks) <= 1)
        ):
            # One effective worker *or* one rank to reduce: a pool can only
            # add startup and IPC overhead, so run the serial path.  (Indexed
            # files reveal their rank count in the footer; forward-only text
            # files don't, so a 1-rank text file still goes through the pool.)
            executor = "serial"
        # Dispatch mode is a function of the executor and source alone, so it
        # is decided up front and the stats carry it from construction — the
        # telemetry attribute is never an empty string, even mid-run.
        if executor == "serial":
            dispatch = "inline"
        elif shard_ranks is not None:
            dispatch = "shard"
        elif (
            executor == "process"
            and isinstance(source, (SegmentedTrace, Trace))
            and _fork_available()
        ):
            dispatch = "fork"
        else:
            dispatch = "payload"
        stats = PipelineStats(
            executor=executor,
            workers=workers,
            requested_executor=config.executor,
            dispatch=dispatch,
        )
        started = time.perf_counter()

        with obs.span(
            "pipeline.run", executor=executor, dispatch=dispatch, workers=workers
        ):
            if dispatch == "inline":
                ranks = self._reduce_serial(rank_frame_streams(source), stats)
            elif dispatch == "shard":
                ranks = self._reduce_sharded(Path(source), shard_ranks, stats)
            elif dispatch == "fork":
                ranks = self._reduce_forked(source, stats)
            else:
                ranks = self._reduce_pooled(rank_segment_streams(source), stats)

            reduced = ReducedTrace(
                name=name or source_name(source),
                method=self.metric.name,
                threshold=self.metric.threshold,
                ranks=ranks,
            )

            merged: Optional[MergedReducedTrace] = None
            if config.merge:
                with time_stage(stats, "merge"), obs.span("pipeline.merge"):
                    merged = merge_reduced_trace(reduced)
                stats.merged_stored = merged.n_stored
                stats.merged_duplicates = merged.n_duplicates

        stats.nprocs = reduced.nprocs
        stats.n_segments = reduced.n_segments
        stats.n_stored = reduced.n_stored
        stats.n_matches = reduced.n_matches
        stats.n_possible_matches = reduced.n_possible_matches
        stats.total_seconds = time.perf_counter() - started
        recorder = obs.current_recorder()
        if recorder is not None:
            stats.record_to(recorder.registry)
        return PipelineResult(reduced=reduced, stats=stats, merged=merged)

    # -- executor strategies ---------------------------------------------------

    def _reduce_serial(self, streams, stats: PipelineStats) -> list[ReducedRankTrace]:
        """Feed each rank's frame straight into the reducer, one rank at a time.

        Memory is bounded by the largest single rank's column arrays plus the
        representative store.  Runs in the caller's process, so task spans
        land directly on the ambient recorder — no capture/snapshot
        round-trip is needed.
        """
        ranks: list[ReducedRankTrace] = []
        with time_stage(stats, "reduce"):
            for rank, frame in streams:
                reduced_rank, counters, match_counters, n_materialized, _ = (
                    _reduce_rank_task(
                        self.metric, rank, frame, self.config.store_capacity
                    )
                )
                ranks.append(reduced_rank)
                stats.store = stats.store.merged_with(counters)
                stats.match = stats.match.merged_with(match_counters)
                stats.segments_materialized += n_materialized
        return ranks

    @staticmethod
    def _collect(
        results, stats: PipelineStats, ranks: list[ReducedRankTrace]
    ) -> None:
        """Fold ordered task results into ``stats``, absorbing any snapshots."""
        recorder = obs.current_recorder()
        for reduced_rank, counters, match_counters, n_materialized, snapshot in results:
            ranks.append(reduced_rank)
            stats.store = stats.store.merged_with(counters)
            stats.match = stats.match.merged_with(match_counters)
            stats.segments_materialized += n_materialized
            if recorder is not None:
                recorder.absorb(snapshot)

    def _reduce_forked(
        self, source: SegmentedTrace | Trace, stats: PipelineStats
    ) -> list[ReducedRankTrace]:
        """Process pool over a fork-shared in-memory trace (zero-copy dispatch).

        The source is published in a module global before the pool starts, so
        fork()ed workers inherit it copy-on-write and each task ships only a
        rank index; only the (much smaller) reduced results cross the pickle
        boundary.  Falls back to :meth:`_reduce_pooled` pickling on platforms
        without fork and for file sources.
        """
        global _FORK_SOURCE
        config = self.config
        workers = min(config.resolved_workers(), max(1, len(source.ranks)))
        capture = obs.enabled()
        results: list[RankTaskResult] = []
        with _FORK_LOCK:
            _FORK_SOURCE = source
            try:
                with time_stage(stats, "reduce"):
                    context = multiprocessing.get_context("fork")
                    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                        futures = [
                            pool.submit(
                                _reduce_fork_task, self.metric, position,
                                config.store_capacity, capture,
                            )
                            for position in range(len(source.ranks))
                        ]
                        results = [future.result() for future in futures]
            finally:
                _FORK_SOURCE = None

        ranks: list[ReducedRankTrace] = []
        self._collect(results, stats, ranks)
        return ranks

    def _reduce_sharded(
        self, path: Path, shard_ranks: list[int], stats: PipelineStats
    ) -> list[ReducedRankTrace]:
        """Fan ``(path, rank)`` shard tasks out over a pool (indexed files).

        Task payloads carry no trace data: each worker opens the file and
        decodes only its rank's byte range, so ingestion itself parallelises
        and no pickled rank payloads cross the pool boundary.  No in-flight
        window is needed — a pending shard task is just a path and an int.
        """
        config = self.config
        workers = min(config.resolved_workers(), max(1, len(shard_ranks)))
        capture = obs.enabled()
        with self._make_executor(workers) as pool:
            with time_stage(stats, "reduce"):
                futures = [
                    pool.submit(
                        _reduce_shard_task, self.metric, str(path), rank,
                        config.store_capacity, capture,
                    )
                    for rank in shard_ranks
                ]
                results = [future.result() for future in futures]

        ranks: list[ReducedRankTrace] = []
        self._collect(results, stats, ranks)
        return ranks

    def _reduce_pooled(self, streams, stats: PipelineStats) -> list[ReducedRankTrace]:
        """Fan rank tasks out over a pool, keeping results in stream order."""
        config = self.config
        workers = config.resolved_workers()
        window = config.max_pending or 2 * workers
        capture = obs.enabled()
        results: dict[int, RankTaskResult] = {}
        pending: dict = {}

        def drain(return_when: str) -> None:
            done, _ = wait(pending, return_when=return_when)
            for future in done:
                results[pending.pop(future)] = future.result()

        with self._make_executor(workers) as pool:
            with time_stage(stats, "reduce"):
                n_streams = 0
                for position, (rank, segments) in enumerate(streams):
                    n_streams += 1
                    # Pooled tasks ship each rank as a columnar frame (column
                    # arrays pickle far smaller than segment-object lists);
                    # the window bounds how many exist at once.
                    with time_stage(stats, "ingest"), obs.span(
                        "dispatch.materialize", rank=rank
                    ):
                        payload = _as_frame(rank, segments)
                    if capture:
                        # The serialized task size is the cost this dispatch
                        # mode pays per rank; measuring it re-pickles, so the
                        # histogram is only fed when telemetry is on.
                        obs.observe(
                            "dispatch.payload_bytes",
                            len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)),
                        )
                    future = pool.submit(
                        _reduce_rank_task, self.metric, rank, payload,
                        config.store_capacity, capture,
                    )
                    pending[future] = position
                    while len(pending) >= window:
                        drain(FIRST_COMPLETED)
                while pending:
                    drain(FIRST_COMPLETED)
        # The ingest spans are nested inside the reduce span; report them
        # disjointly so the per-stage numbers add up to the total.
        if "ingest" in stats.stage_seconds:
            stats.stage_seconds["reduce"] -= stats.stage_seconds["ingest"]

        ranks: list[ReducedRankTrace] = []
        self._collect(
            (results[position] for position in range(n_streams)), stats, ranks
        )
        return ranks

    def _make_executor(self, workers: int) -> Executor:
        if self.config.executor == "thread":
            return ThreadPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(max_workers=workers)


def reduce_pipeline(
    source: SegmentSource,
    metric: SimilarityMetric,
    config: Optional[PipelineConfig] = None,
    *,
    name: Optional[str] = None,
) -> PipelineResult:
    """Convenience wrapper: ``ReductionPipeline(metric, config).reduce(source)``."""
    return ReductionPipeline(metric, config).reduce(source, name=name)


def sweep_pipeline(
    source: SegmentSource,
    plan,
    config: Optional[PipelineConfig] = None,
    *,
    name: Optional[str] = None,
    instrument: bool = False,
):
    """Run a whole sweep grid over ``source``, parallelising where possible.

    For indexed (``.rpb``) file sources and a pooled executor, the grid is
    fanned out as **(rank-shard × feature-family)** tasks: each pool worker
    opens the file, decodes exactly one rank's byte range, and runs one
    family's configs over it in a single shared pass — so ingestion *and*
    the grid parallelise, task payloads carry only a path, a rank id, and
    (method, threshold) pairs, and vector sharing is preserved inside every
    task (configs of different families share no vectors anyway).

    Everything else — in-memory traces, forward-only text files, serial or
    single-worker configs, single-rank files — runs the whole grid through
    one shared segment stream in this process (``dispatch="inline"``), which
    is the sweep engine's home ground: segments are streamed exactly once
    for all configs.

    ``config.store_capacity`` bounds each config's per-rank store as usual;
    ``config.merge`` does not apply to sweeps and is ignored.  Returns a
    :class:`~repro.sweep.results.SweepResult`; per-config outputs are
    byte-identical to solo serial reductions in either dispatch mode.
    """
    from repro.sweep.engine import (
        SweepEngine,
        _sweep_shard_task,
        merge_rank_groups,
    )
    from repro.sweep.plan import SweepPlan

    if not isinstance(plan, SweepPlan):
        plan = SweepPlan(plan)
    config = config or PipelineConfig()
    engine = SweepEngine(
        plan, store_capacity=config.store_capacity, instrument=instrument
    )
    shard_ranks = indexed_source_ranks(source)
    workers = config.resolved_workers()
    if (
        config.executor == "serial"
        or workers == 1
        or shard_ranks is None
        or len(shard_ranks) <= 1
    ):
        return engine.sweep(source, name=name)

    started = time.perf_counter()
    path = str(Path(source))
    groups = [
        tuple(c.key for c in family.configs) for family in plan.families
    ]
    n_tasks = len(shard_ranks) * len(groups)
    workers = min(workers, max(1, n_tasks))
    capture = obs.enabled()
    if config.executor == "thread":
        pool_cls, pool_kwargs = ThreadPoolExecutor, {}
    else:
        pool_cls, pool_kwargs = ProcessPoolExecutor, {}
    results: dict[tuple[int, int], object] = {}
    with obs.span(
        "sweep.run", dispatch="shard", configs=plan.n_configs, workers=workers
    ):
        with pool_cls(max_workers=workers, **pool_kwargs) as pool:
            futures = {
                pool.submit(
                    _sweep_shard_task,
                    group,
                    path,
                    rank,
                    config.store_capacity,
                    instrument,
                    capture,
                ): (rank_index, group_index)
                for rank_index, rank in enumerate(shard_ranks)
                for group_index, group in enumerate(groups)
            }
            for future, position in futures.items():
                results[position] = future.result()

        recorder = obs.current_recorder()
        if recorder is not None:
            for part in results.values():
                recorder.absorb(part.snapshot)
        rank_sweeps = [
            merge_rank_groups(
                [results[(rank_index, group_index)] for group_index in range(len(groups))]
            )
            for rank_index in range(len(shard_ranks))
        ]
        result = engine._assemble(
            name or source_name(source), rank_sweeps, started, dispatch="shard"
        )
    return result
