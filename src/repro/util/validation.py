"""Argument validation helpers.

The public API raises :class:`ValueError`/:class:`TypeError` with descriptive
messages rather than letting malformed configurations propagate into the
simulator or reducer, where the failure mode would be far harder to diagnose.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_rank",
    "check_type",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_rank(rank: int, nprocs: int) -> int:
    """Require ``0 <= rank < nprocs``."""
    if not isinstance(rank, int):
        raise TypeError(f"rank must be an int, got {type(rank).__name__}")
    if not 0 <= rank < nprocs:
        raise ValueError(f"rank {rank} out of range for {nprocs} processes")
    return rank


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Require ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        expected_name = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {expected_name}, got {type(value).__name__}")
    return value
