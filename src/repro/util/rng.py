"""Deterministic random-number-generator helpers.

Every stochastic component in the library (work-time jitter, noise phases,
load-balance drift) takes an explicit integer seed.  To avoid accidentally
correlating streams across ranks or components we derive child seeds from a
parent seed plus a string label using a stable hash (NumPy's ``SeedSequence``
spawning is order-dependent, which makes reproducibility fragile when callers
construct generators lazily; hashing labels is order-independent).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "rng_for"]


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is a SHA-256 hash of the base seed and the ``repr`` of each
    label, truncated to 63 bits so it is a valid NumPy seed.  The same
    ``(base_seed, labels)`` always yields the same child seed, independent of
    the order in which other children are derived.

    Parameters
    ----------
    base_seed:
        Parent seed (any Python int).
    labels:
        Arbitrary hashable/reprable labels, e.g. ``("rank", 3, "noise")``.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(repr(label).encode("utf-8"))
    digest = hasher.digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def rng_for(base_seed: int, *labels: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``(base_seed, labels)``.

    See :func:`derive_seed` for the derivation rule.
    """
    return np.random.default_rng(derive_seed(base_seed, *labels))
