"""Small statistics helpers used by the evaluation criteria."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["percentile", "summarize", "Summary", "pearson", "spearman", "coefficient_of_variation"]


def percentile(values: Iterable[float], q: float) -> float:
    """Return the ``q``-th percentile (0..100) of ``values``.

    Uses linear interpolation (NumPy's default).  An empty input returns 0.0,
    which is the natural value for "approximation distance of an empty trace".
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.size == 0:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Return a :class:`Summary` of ``values`` (empty input gives all zeros)."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
    )


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation, defined as 1.0 for degenerate (constant) inputs.

    Two constant vectors are "perfectly similar profiles" for the purposes of
    diagnosis comparison, so the degenerate case maps to 1.0 when both are
    constant and 0.0 when only one is.
    """
    ax = np.asarray(x, dtype=float)
    ay = np.asarray(y, dtype=float)
    if ax.shape != ay.shape:
        raise ValueError("pearson requires equal-length inputs")
    if ax.size < 2:
        return 1.0
    sx = ax.std()
    sy = ay.std()
    if sx == 0.0 and sy == 0.0:
        return 1.0
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.corrcoef(ax, ay)[0, 1])


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation built on :func:`pearson` of the ranks."""
    ax = np.asarray(x, dtype=float)
    ay = np.asarray(y, dtype=float)
    if ax.shape != ay.shape:
        raise ValueError("spearman requires equal-length inputs")
    if ax.size < 2:
        return 1.0
    rx = _rankdata(ax)
    ry = _rankdata(ay)
    return pearson(rx, ry)


def _rankdata(a: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank), 1-based like scipy.stats.rankdata."""
    order = np.argsort(a, kind="stable")
    ranks = np.empty(a.size, dtype=float)
    ranks[order] = np.arange(1, a.size + 1, dtype=float)
    # average ties
    unique_vals, inverse, counts = np.unique(a, return_inverse=True, return_counts=True)
    sums = np.zeros(unique_vals.size)
    np.add.at(sums, inverse, ranks)
    ranks = sums[inverse] / counts[inverse]
    return ranks


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Std / |mean|; 0.0 when the mean is (near) zero."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 0.0
    mean = arr.mean()
    if abs(mean) < 1e-12:
        return 0.0
    return float(arr.std() / abs(mean))
