"""Plain-text table rendering used by the experiment harness.

The benchmark harness prints the same rows/series the paper reports; this
module keeps that formatting in one place so benches and examples agree.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_matrix"]


def _fmt(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = ".3g",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_fmt(cell, float_fmt) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    float_fmt: str = ".3g",
    title: str | None = None,
) -> str:
    """Render one x column plus one column per named series (a "figure" as text)."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(values[i] for values in series.values())])
    return format_table(headers, rows, float_fmt=float_fmt, title=title)


def format_matrix(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Mapping[tuple[str, str], object],
    *,
    corner: str = "",
    float_fmt: str = ".3g",
    title: str | None = None,
) -> str:
    """Render a labelled matrix; missing cells render as '-'."""
    headers = [corner, *col_labels]
    rows = []
    for r in row_labels:
        rows.append([r, *(values.get((r, c), "-") for c in col_labels)])
    return format_table(headers, rows, float_fmt=float_fmt, title=title)
