"""Shared utilities: deterministic RNG helpers, statistics, validation, tables.

These helpers are deliberately dependency-light (NumPy only) so that every
other subpackage can rely on them without import cycles.
"""

from repro.util.rng import derive_seed, rng_for
from repro.util.stats import percentile, summarize
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_rank,
    check_type,
)

__all__ = [
    "derive_seed",
    "rng_for",
    "percentile",
    "summarize",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_rank",
    "check_type",
]
