"""Sweep plans: expand config grids and group them into feature families.

A :class:`SweepConfig` names one (method, threshold) combination.  A
:class:`SweepPlan` holds an ordered list of distinct configs plus their
grouping into :class:`FeatureFamily`\\ s: configs whose metrics derive the
*same* feature vector from any given segment, so the sweep engine computes
that vector once per segment per family instead of once per config.

The family key is the metric's ``vector_key()`` — the same key the
:class:`~repro.core.reduced.StoredSegment` vector cache uses — so grouping
can never merge configs with different vector layouts: relDiff/absDiff share
the canonical pairwise layout, the three Minkowski variants share the
Minkowski layout, and each wavelet transform (and padding ablation) is its
own family because the rows hold transformed coefficients.  Methods without
feature vectors (``iter_k``, ``iter_avg``) each form a scan-only family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Sequence, Union

from repro.core.metrics import THRESHOLD_STUDY, create_metric
from repro.core.metrics.base import DistanceMetric, SimilarityMetric

__all__ = ["SweepConfig", "FeatureFamily", "SweepPlan"]

#: Anything that names one sweep configuration.
ConfigSpec = Union[str, "SweepConfig", SimilarityMetric, tuple]


@dataclass(frozen=True, slots=True)
class SweepConfig:
    """One (method, threshold) combination of a sweep grid.

    Configs are value objects: the metric instance itself is created on
    demand (:meth:`create`), so a config is cheap to hash, compare, and ship
    to pool workers as a task payload.
    """

    method: str
    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        # Validate eagerly so a bad grid fails at plan construction, not in
        # the middle of a long sweep (create_metric re-checks on each call).
        create_metric(self.method, self.threshold)

    @property
    def key(self) -> tuple:
        """Identity of the config inside one plan/result grid."""
        return (self.method, self.threshold)

    def create(self) -> SimilarityMetric:
        """Fresh metric instance for this config."""
        return create_metric(self.method, self.threshold)

    def describe(self) -> str:
        return self.create().describe()


@dataclass(frozen=True, slots=True)
class FeatureFamily:
    """Configs whose metrics consume identical per-segment feature vectors.

    ``vector_key`` is the shared :meth:`DistanceMetric.vector_key` of every
    member, or ``None`` for a scan-only family (iteration methods, which read
    no feature vectors).  Only vectorized families enable vector sharing; a
    scan-only family always has exactly one member.
    """

    vector_key: Optional[Hashable]
    configs: tuple[SweepConfig, ...]

    @property
    def vectorized(self) -> bool:
        return self.vector_key is not None

    @property
    def n_configs(self) -> int:
        return len(self.configs)

    def describe(self) -> str:
        members = ", ".join(c.describe() for c in self.configs)
        kind = "shared vectors" if self.vectorized else "scan-only"
        return f"[{kind}] {members}"


def _config_from_spec(spec: ConfigSpec) -> SweepConfig:
    if isinstance(spec, SweepConfig):
        return spec
    if isinstance(spec, str):
        return SweepConfig(spec)
    if isinstance(spec, SimilarityMetric):
        # Registry identity only: constructor extras outside (name, threshold)
        # — e.g. the wavelet padding ablation — are not representable as a
        # grid config, so reject instances that would silently lose them.
        rebuilt = create_metric(spec.name, spec.threshold)
        if type(rebuilt) is not type(spec) or vars(rebuilt) != vars(spec):
            raise ValueError(
                f"metric instance {spec!r} is not equivalent to "
                f"create_metric({spec.name!r}, {spec.threshold!r}); sweep configs "
                "can only carry registry metrics identified by (method, threshold)"
            )
        return SweepConfig(spec.name, spec.threshold)
    if isinstance(spec, tuple) and len(spec) == 2:
        name, threshold = spec
        return SweepConfig(name, threshold)
    raise TypeError(
        "sweep config spec must be a method name, a (name, threshold) pair, a "
        f"SweepConfig, or a registry metric instance; got {spec!r}"
    )


class SweepPlan:
    """An ordered, de-duplicated config grid grouped into feature families."""

    __slots__ = ("configs", "families")

    def __init__(self, specs: Iterable[ConfigSpec]):
        configs: list[SweepConfig] = []
        seen: set[tuple] = set()
        for spec in specs:
            config = _config_from_spec(spec)
            if config.key in seen:
                continue
            seen.add(config.key)
            configs.append(config)
        if not configs:
            raise ValueError("a sweep plan needs at least one configuration")
        self.configs: tuple[SweepConfig, ...] = tuple(configs)
        self.families: tuple[FeatureFamily, ...] = self._group(self.configs)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_grid(
        cls,
        methods: Sequence[str],
        thresholds: Optional[Sequence[float]] = None,
        *,
        thresholds_per_method: Optional[dict[str, Sequence[float]]] = None,
    ) -> "SweepPlan":
        """Expand a method × threshold grid into a plan.

        ``thresholds`` applies the same values to every method; with neither
        ``thresholds`` nor a per-method entry, a method gets the paper's
        threshold-study values (:data:`~repro.core.metrics.THRESHOLD_STUDY`),
        and ``iter_avg`` — which takes no threshold — contributes its single
        config.
        """
        specs: list[ConfigSpec] = []
        for method in methods:
            if method == "iter_avg":
                specs.append(SweepConfig(method))
                continue
            values: Optional[Sequence[float]] = None
            if thresholds_per_method is not None and method in thresholds_per_method:
                values = thresholds_per_method[method]
            elif thresholds is not None:
                values = thresholds
            elif method in THRESHOLD_STUDY:
                values = THRESHOLD_STUDY[method]
            if values is None:
                raise ValueError(f"no thresholds given for method {method!r}")
            specs.extend(SweepConfig(method, float(v)) for v in values)
        return cls(specs)

    @classmethod
    def single(cls, method: str, threshold: Optional[float] = None) -> "SweepPlan":
        """Degenerate one-config plan (useful as an oracle harness)."""
        return cls([SweepConfig(method, threshold)])

    @staticmethod
    def _group(configs: Sequence[SweepConfig]) -> tuple[FeatureFamily, ...]:
        ordered: list[Optional[Hashable]] = []
        members: dict[Optional[Hashable], list[SweepConfig]] = {}
        scan_only = object()  # each scan-only config is its own family
        for config in configs:
            metric = config.create()
            if isinstance(metric, DistanceMetric):
                key: Hashable = metric.vector_key()
                bucket = members.get(key)
                if bucket is None:
                    members[key] = [config]
                    ordered.append(key)
                else:
                    bucket.append(config)
            else:
                token = (scan_only, config.key)
                members[token] = [config]
                ordered.append(token)
        families = []
        for key in ordered:
            configs_in = tuple(members[key])
            vector_key = None if isinstance(key, tuple) and key and key[0] is scan_only else key
            families.append(FeatureFamily(vector_key=vector_key, configs=configs_in))
        return tuple(families)

    # -- introspection ---------------------------------------------------------

    @property
    def n_configs(self) -> int:
        return len(self.configs)

    @property
    def n_families(self) -> int:
        return len(self.families)

    @property
    def n_shared_configs(self) -> int:
        """Configs living in vectorized families (candidates for sharing)."""
        return sum(f.n_configs for f in self.families if f.vectorized)

    def config_keys(self) -> list[tuple]:
        return [c.key for c in self.configs]

    def describe(self) -> str:
        lines = [f"sweep plan: {self.n_configs} configs in {self.n_families} families"]
        lines += [f"  {family.describe()}" for family in self.families]
        return "\n".join(lines)

    def __iter__(self):
        return iter(self.configs)

    def __len__(self) -> int:
        return len(self.configs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SweepPlan {self.n_configs} configs / {self.n_families} families>"
