"""Sweep results: the per-config grid one sweep run produced.

A :class:`SweepResult` holds one :class:`ConfigOutcome` per config of the
plan, in plan order: the config, its reduced trace (byte-identical to a solo
serial reduction), and its store/match instrumentation.  The grid converts to
:class:`~repro.evaluation.runner.EvaluationResult` rows — % file size,
degree of matching, approximation distance, retention of trends — via
:meth:`SweepResult.evaluation_results`, which reuses the exact criteria code
of the serial evaluation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.candidates import MatchCounters
from repro.core.reduced import ReducedTrace
from repro.pipeline.store import StoreCounters
from repro.sweep.plan import SweepConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.runner import EvaluationResult, PreparedWorkload
    from repro.sweep.engine import SweepStats

__all__ = ["ConfigOutcome", "SweepResult"]

_MISSING = object()


@dataclass(slots=True)
class ConfigOutcome:
    """One config's share of a sweep: its reduced trace plus instrumentation."""

    config: SweepConfig
    reduced: ReducedTrace
    store: StoreCounters = field(default_factory=StoreCounters)
    #: Match-stage timing; only populated by instrumented sweeps.
    match: Optional[MatchCounters] = None

    def row(self) -> dict:
        """Reduction-level summary row (no evaluation criteria)."""
        reduced = self.reduced
        row = {
            "method": self.config.method,
            "threshold": self.config.threshold,
            "n_segments": reduced.n_segments,
            "n_stored": reduced.n_stored,
            "degree_of_matching": reduced.degree_of_matching(),
            "reduced_bytes": reduced.size_bytes(),
        }
        if self.match is not None:
            row["match_seconds"] = self.match.seconds
            row["rows_pruned"] = self.match.rows_pruned
            row["blocks_evaluated"] = self.match.blocks_evaluated
        return row


@dataclass(slots=True)
class SweepResult:
    """The full grid of one sweep run, in plan order."""

    name: str
    outcomes: list[ConfigOutcome]
    stats: "SweepStats"

    def __iter__(self) -> Iterator[ConfigOutcome]:
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def configs(self) -> list[SweepConfig]:
        return [o.config for o in self.outcomes]

    def outcome_for(
        self, method: str, threshold: Optional[float] = _MISSING
    ) -> ConfigOutcome:
        """Look an outcome up by method (and threshold, when ambiguous)."""
        matches = [
            o
            for o in self.outcomes
            if o.config.method == method
            and (threshold is _MISSING or o.config.threshold == threshold)
        ]
        if not matches:
            raise KeyError(f"no sweep outcome for {method!r} / {threshold!r}")
        if len(matches) > 1:
            raise KeyError(
                f"{len(matches)} outcomes for method {method!r}; pass a threshold"
            )
        return matches[0]

    def reduced_for(
        self, method: str, threshold: Optional[float] = _MISSING
    ) -> ReducedTrace:
        return self.outcome_for(method, threshold).reduced

    def rows(self) -> list[dict]:
        """Reduction-level rows for the whole grid, in plan order."""
        return [o.row() for o in self.outcomes]

    def evaluation_results(
        self,
        prepared: "PreparedWorkload",
        *,
        comparison_options=None,
        keep_comparison: bool = False,
    ) -> list["EvaluationResult"]:
        """All four criteria for every config, in plan order.

        Reuses the serial path's criteria code on each config's reduced trace,
        so a row here equals the row ``evaluate_method`` would produce for the
        same config (the equivalence tests assert field-for-field equality).
        """
        # Imported lazily: evaluation.runner imports the sweep engine for its
        # grid backend, so a module-level import here would be circular.
        from repro.evaluation.runner import result_from_reduced

        return [
            result_from_reduced(
                prepared,
                outcome.reduced,
                comparison_options=comparison_options,
                keep_comparison=keep_comparison,
            )
            for outcome in self.outcomes
        ]
