"""Shared-ingest sweep engine: one columnar frame, N reducer states.

For each rank the engine runs the paper's matching algorithm for *every*
config of a :class:`~repro.sweep.plan.SweepPlan` simultaneously, sharing all
the per-segment work that does not depend on the config:

* the rank's :class:`~repro.core.frames.RankFrame` itself (``.rpb`` files
  decode straight to columns; other sources adapt through the segments→frame
  adapter — either way the rank is ingested exactly once);
* the normalisation and the structural keys, which come from the frame's
  bulk passes (one vectorized subtraction and one interning sweep per rank
  instead of a ``relative_to_start()`` copy and a tuple hash per segment);
* each feature family's feature vectors, built in one bulk frame pass and
  used both as the ``match_batch`` probe of every member config and — via
  the :class:`~repro.core.reduced.StoredSegment` vector cache — as the
  candidate row when a member config stores the segment as a representative.

Everything config-dependent stays private per config: the representative
store, the :class:`~repro.core.candidates.CandidateList` buckets and their
row matrices, the reduced-trace output, and the segment-id sequence.  The
per-config decisions are made by the same kernels the serial reducer uses,
in the same order, so each config's reduced trace serializes byte-identical
to a solo :class:`~repro.core.reducer.TraceReducer` run (the equivalence
suite asserts exactly that for all nine metrics).

:class:`~repro.trace.segments.Segment` objects materialize lazily: a frame
row becomes a segment only when some config needs the object itself — to
store it as a representative, to run a scan-only metric (the iteration
methods), or to feed a non-default ``on_match``.  Configs whose metric
mutates its stored representatives (``iter_avg``) get a private materialized
copy of each segment they store; all other configs share one materialized
segment per input segment, which is safe because matching and serialization
never write to it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

from repro import obs
from repro.core.candidates import CandidateList, MatchCounters, first_match_index
from repro.core.frames import InternedKey, RankFrame
from repro.core.metrics.base import (
    PRUNE_FALLBACK_DENOM,
    PRUNE_MIN_ROWS,
    PRUNE_REL,
    SimilarityMetric,
)
from repro.core.reduced import ReducedRankTrace, ReducedTrace, StoredSegment
from repro.pipeline.store import StoreCounters, create_store
from repro.pipeline.stream import (
    SegmentSource,
    rank_frame_streams,
    shard_frame,
    source_name,
)
from repro.sweep.plan import SweepConfig, SweepPlan
from repro.sweep.results import ConfigOutcome, SweepResult
from repro.trace.segments import Segment

__all__ = ["SweepStats", "SweepEngine", "sweep_source"]

#: Backwards-compatible alias: the interned structural key now lives with the
#: columnar frame machinery (every frame hands out the same wrapper objects).
_InternedKey = InternedKey


@dataclass(slots=True)
class SweepStats:
    """Instrumentation of one sweep run (whole grid, all ranks)."""

    n_configs: int = 0
    n_families: int = 0
    n_ranks: int = 0
    n_segments: int = 0
    #: ``Segment`` objects actually built on the columnar path — the
    #: lazy-materialization saving is ``n_segments - segments_materialized``.
    segments_materialized: int = 0
    #: Feature-vector computations actually performed (per segment × family).
    vector_builds: int = 0
    #: Vector computations a per-config serial loop would have performed for
    #: the same stream (per segment × vectorized config).
    vector_builds_naive: int = 0
    total_seconds: float = 0.0
    #: How the grid reached the reducer states: ``inline`` (one shared frame
    #: in this process) or ``shard`` ((rank × family) pool tasks).
    dispatch: str = "inline"

    @property
    def vector_builds_saved(self) -> int:
        """Vector computations avoided by family sharing."""
        return max(0, self.vector_builds_naive - self.vector_builds)

    @property
    def sharing_factor(self) -> float:
        """Naive vector builds per actual build (1.0 = no sharing)."""
        if self.vector_builds == 0:
            return 1.0
        return self.vector_builds_naive / self.vector_builds

    def rows(self) -> list[list]:
        """(property, value) rows for the CLI table."""
        return [
            ["configs", self.n_configs],
            ["feature families", self.n_families],
            ["task dispatch", self.dispatch],
            ["ranks", self.n_ranks],
            ["segments (ingested once)", self.n_segments],
            [
                "segments materialized (lazy)",
                f"{self.segments_materialized} of {self.n_segments} decoded",
            ],
            ["vector builds", self.vector_builds],
            ["vector builds saved", self.vector_builds_saved],
            ["vector sharing factor", f"{self.sharing_factor:.2f}x"],
            ["sweep wall time (s)", f"{self.total_seconds:.4f}"],
        ]

    def record_to(self, registry) -> None:
        """Record this sweep's totals into an ``obs`` metrics registry."""
        registry.set_gauge("sweep.configs", self.n_configs)
        registry.set_gauge("sweep.families", self.n_families)
        registry.set_gauge("sweep.ranks", self.n_ranks)
        registry.inc("sweep.segments", self.n_segments)
        registry.inc("columnar.materialized", self.segments_materialized)
        registry.inc("sweep.vector_builds", self.vector_builds)
        registry.inc("sweep.vector_builds_naive", self.vector_builds_naive)
        registry.inc("sweep.total_seconds", self.total_seconds)


class _ConfigState:
    """One config's private reducer state for one rank."""

    __slots__ = (
        "config",
        "metric",
        "threshold",
        "vectorized",
        "vector_key",
        "mutates",
        "default_on_match",
        "store",
        "add_built",
        "lookup",
        "reduced",
        "next_id",
        "match_counters",
    )

    def __init__(
        self,
        config: SweepConfig,
        metric: SimilarityMetric,
        vector_key,
        rank: int,
        store_capacity: Optional[int],
        instrument: bool,
    ) -> None:
        self.config = config
        self.metric = metric
        self.threshold = metric.threshold
        self.vectorized = vector_key is not None
        self.vector_key = vector_key
        self.mutates = metric.mutates_stored
        # When on_match is the base-class default (count the match) it runs
        # inline, so matches never force a Segment materialization.
        self.default_on_match = type(metric).on_match is SimilarityMetric.on_match
        self.store = create_store(store_capacity)
        self.add_built = getattr(self.store, "add_built", None)
        self.lookup = self.store.candidates  # prebound: hottest call in the loop
        self.reduced = ReducedRankTrace(rank=rank)
        self.next_id = 0
        self.match_counters = MatchCounters() if instrument else None


@dataclass(slots=True)
class _RankSweep:
    """Everything one rank's one-pass sweep produced."""

    rank: int
    reduced: dict[tuple, ReducedRankTrace]
    store_counters: dict[tuple, StoreCounters]
    match_counters: dict[tuple, MatchCounters]
    n_segments: int = 0
    #: ``Segment`` objects lazily materialized from the rank's frame.
    segments_materialized: int = 0
    vector_builds: int = 0
    vector_builds_naive: int = 0
    #: Worker telemetry snapshot when the task ran in capture mode.
    snapshot: Optional[obs.RecorderSnapshot] = None


def merge_rank_groups(parts: list[_RankSweep]) -> _RankSweep:
    """Merge one rank's per-family-group sweeps into a single rank sweep.

    Used by the sharded dispatch, where each (rank × family group) pool task
    re-decodes the rank's frame independently: config outcomes are disjoint
    across groups, every group saw the same segments (so the segment count is
    taken once, not summed), and the work counters — vector builds and lazy
    materializations, both real work done per group — add up.
    """
    if not parts:
        raise ValueError("cannot merge an empty list of rank sweeps")
    merged = parts[0]
    for part in parts[1:]:
        if part.rank != merged.rank:
            raise ValueError(f"cannot merge ranks {merged.rank} and {part.rank}")
        merged.reduced.update(part.reduced)
        merged.store_counters.update(part.store_counters)
        merged.match_counters.update(part.match_counters)
        merged.segments_materialized += part.segments_materialized
        merged.vector_builds += part.vector_builds
        merged.vector_builds_naive += part.vector_builds_naive
    return merged


def _sweep_shard_task(
    specs: tuple[tuple, ...],
    path: str,
    rank: int,
    store_capacity: Optional[int],
    instrument: bool,
    capture: bool = False,
) -> _RankSweep:
    """One pool task of a sharded sweep: (rank shard × config group).

    The payload is just a file path, a rank id, and (method, threshold)
    pairs; the worker opens the indexed file, decodes only the rank's byte
    range into a columnar frame, and runs the group's configs over it in one
    shared pass.  With ``capture=True`` the task records into a private
    recorder and ships the snapshot back on the result.
    """
    plan = SweepPlan([SweepConfig(method, threshold) for method, threshold in specs])
    engine = SweepEngine(plan, store_capacity=store_capacity, instrument=instrument)
    if not capture:
        return engine.sweep_rank(rank, shard_frame(path, rank))
    recorder = obs.Recorder(label="worker")
    with obs.local_recording(recorder):
        result = engine.sweep_rank(rank, shard_frame(path, rank))
    registry = recorder.registry
    registry.inc("ingest.segments", result.n_segments)
    registry.inc("columnar.materialized", result.segments_materialized)
    registry.inc("sweep.vector_builds", result.vector_builds)
    registry.inc("sweep.vector_builds_naive", result.vector_builds_naive)
    result.snapshot = recorder.snapshot()
    return result


class SweepEngine:
    """Evaluates a whole sweep plan in a single pass over each rank's frame.

    ``store_capacity`` bounds every config's per-rank representative store
    (``None`` keeps the unbounded byte-identical default, exactly as in the
    pipeline).  ``instrument=True`` additionally times the match stage per
    config (one timer pair per config per candidate segment — measurable
    overhead, so it is off by default).
    """

    def __init__(
        self,
        plan: SweepPlan,
        *,
        store_capacity: Optional[int] = None,
        instrument: bool = False,
        prune: bool = True,
    ) -> None:
        if not isinstance(plan, SweepPlan):
            plan = SweepPlan(plan)
        self.plan = plan
        self.store_capacity = store_capacity
        self.instrument = instrument
        self.prune = bool(prune)

    # -- per-rank reduction ------------------------------------------------------

    def sweep_rank(
        self, rank: int, segments: Union[RankFrame, Iterable[Segment]]
    ) -> _RankSweep:
        """Run every config of the plan over one rank's frame (or segments).

        A plain segment iterable adapts through the segments→frame adapter,
        so every caller runs the same columnar loop.
        """
        if isinstance(segments, RankFrame):
            frame = segments
        else:
            frame = RankFrame.from_segments(rank, segments)
        with obs.span("sweep.rank", rank=rank, configs=self.plan.n_configs):
            return self._sweep_rank(frame)

    def _sweep_rank(self, frame: RankFrame) -> _RankSweep:
        instrument = self.instrument
        prune = self.prune
        capacity = self.store_capacity
        rank = frame.rank
        n_segments = frame.n_segments
        vector_builds = 0
        vector_builds_naive = 0
        # Per family: the shared probe vectors (one bulk frame pass serves
        # every member config) plus the member states grouped by metric
        # *kind* (class).  Metric instances are fresh per rank, mirroring the
        # pipeline's per-task metric copies (metrics hold no cross-rank
        # state, but iter_avg's mutation path must never alias).  Configs of
        # one kind share a threshold-independent ``match_stats`` kernel, so
        # the engine evaluates each kind's stacked candidate rows in a single
        # NumPy pass per segment and applies each config's threshold as a
        # cheap comparison over its own slice.
        families: list[tuple[list[_ConfigState], list, Optional[list]]] = []
        for family in self.plan.families:
            states = [
                _ConfigState(c, c.create(), family.vector_key, rank, capacity, instrument)
                for c in family.configs
            ]
            for state in states:
                state.reduced.n_segments = n_segments
            by_kind: dict[type, list[_ConfigState]] = {}
            vectors: Optional[list] = None
            if family.vectorized:
                for state in states:
                    bucket = by_kind.get(type(state.metric))
                    if bucket is None:
                        by_kind[type(state.metric)] = bucket = []
                    bucket.append(state)
                # One bulk pass builds the family's probes for the whole
                # rank; logically still one build per segment, shared by
                # every member config.
                vectors = states[0].metric.frame_vectors(frame)
                vector_builds += n_segments
                vector_builds_naive += n_segments * len(states)
            # (member states, their thresholds as a row-multiplier source)
            kinds = [
                (kind_states, np.array([s.threshold for s in kind_states]))
                for kind_states in by_kind.values()
            ]
            families.append((states, kinds, vectors))

        keys = frame.structural_keys()
        starts = frame.starts_list()
        perf_counter = time.perf_counter

        for i in range(n_segments):
            key = keys[i]
            start = starts[i]
            # One-element cache of the segment's materialized normalised
            # form, shared by every config that needs the object itself.
            rel: list = [None]
            for states, kinds, vectors in families:
                if vectors is None:
                    # Scan-only family (iteration methods): no shared vector,
                    # and the metrics inspect the segment object itself.
                    relative = rel[0]
                    if relative is None:
                        relative = rel[0] = frame.segment(i)
                    for state in states:
                        reduced = state.reduced
                        candidates = state.lookup(key)
                        chosen = None
                        if candidates:
                            reduced.n_possible_matches += 1
                            counters = state.match_counters
                            started = perf_counter() if counters is not None else 0.0
                            chosen = state.metric.match_candidates(relative, candidates)
                            if counters is not None:
                                counters.seconds += perf_counter() - started
                                counters.calls += 1
                                counters.rows_compared += len(candidates)
                        self._record(state, key, frame, i, start, rel, candidates, chosen, None)
                    continue

                # One pre-built row serves every member config, both as the
                # match probe and as the stored candidate's cached row.
                vector = vectors[i]
                for kind_states, kind_thresholds in kinds:
                    # Gather each member's candidates; members with none
                    # store immediately, the rest join the stacked kernel.
                    participants = []
                    for state in kind_states:
                        candidates = state.lookup(key)
                        if candidates:
                            state.reduced.n_possible_matches += 1
                            if isinstance(candidates, CandidateList):
                                matrix, scales, summaries = (
                                    candidates.matrix_scales_summaries(state.metric)
                                )
                                participants.append(
                                    (state, candidates, matrix, scales, summaries)
                                )
                            else:  # pragma: no cover - stores always bucket
                                relative = rel[0]
                                if relative is None:
                                    relative = rel[0] = frame.segment(i)
                                chosen = state.metric.match_candidates(relative, candidates)
                                self._record(
                                    state, key, frame, i, start, rel, candidates, chosen, vector
                                )
                        else:
                            self._record(
                                state, key, frame, i, start, rel, candidates, None, vector
                            )
                    if not participants:
                        continue
                    counted = perf_counter() if instrument else 0.0
                    if len(participants) == 1:
                        state, candidates, matrix, scales, summaries = participants[0]
                        if prune:
                            index = state.metric.match_pruned(
                                vector, matrix, scales, summaries, state.match_counters
                            )
                        else:
                            index = state.metric.match_batch(vector, matrix, scales)
                        chosen = candidates[index] if index is not None else None
                        self._record(state, key, frame, i, start, rel, candidates, chosen, vector)
                    else:
                        self._match_stacked(
                            participants,
                            kind_states,
                            kind_thresholds,
                            vector,
                            prune,
                            key,
                            frame,
                            i,
                            start,
                            rel,
                        )
                    if instrument:
                        elapsed = perf_counter() - counted
                        share = elapsed / len(participants)
                        for state, candidates, _, _, _ in participants:
                            counters = state.match_counters
                            counters.seconds += share
                            counters.calls += 1
                            counters.rows_compared += len(candidates)

        result = _RankSweep(
            rank=rank,
            reduced={},
            store_counters={},
            match_counters={},
            n_segments=n_segments,
            segments_materialized=frame.materialized,
            vector_builds=vector_builds,
            vector_builds_naive=vector_builds_naive,
        )
        for states, _, _ in families:
            for state in states:
                result.reduced[state.config.key] = state.reduced
                result.store_counters[state.config.key] = state.store.counters
                if state.match_counters is not None:
                    result.match_counters[state.config.key] = state.match_counters
        return result

    def _match_stacked(
        self,
        participants: list,
        kind_states: list[_ConfigState],
        kind_thresholds: np.ndarray,
        vector: np.ndarray,
        prune: bool,
        key,
        frame: RankFrame,
        i: int,
        start: float,
        rel: list,
    ) -> None:
        """One kernel pass over several members' stacked candidate rows.

        The statistics and the masks are row-wise, so each member's slice is
        bitwise what its own solo kernel would compute; thresholds enter as
        one repeated row-multiplier instead of a multiply per member.  With
        pruning, the family's prefilter runs *once* over the stacked summary
        columns — each row's prune limit carries its own member's threshold,
        so survivors are shared across the whole threshold grid — and the
        exact kernel only sees the surviving rows; each member's first match
        is then recovered from the sorted matched-row indices.
        """
        counts = [p[2].shape[0] for p in participants]
        stacked = np.concatenate([p[2] for p in participants])
        if participants[0][3] is not None:
            stacked_scales = np.concatenate([p[3] for p in participants])
        else:
            stacked_scales = None
        if len(participants) == len(kind_states):
            thresholds = kind_thresholds
        else:
            thresholds = np.array([p[0].threshold for p in participants])
        per_row = np.repeat(thresholds, counts)
        metric = participants[0][0].metric
        if (
            prune
            and stacked.shape[0] >= PRUNE_MIN_ROWS
            and participants[0][4] is not None
            and metric.prune_stats is not None
        ):
            stacked_summaries = np.concatenate([p[4] for p in participants])
            pstat, pbase = metric.prune_stats(vector, stacked_summaries, stacked_scales)
            plimit = per_row * PRUNE_REL
            keep = pstat <= (plimit if pbase is None else plimit * pbase)
            survivors = np.flatnonzero(keep)
            if survivors.size * PRUNE_FALLBACK_DENOM > stacked.shape[0]:
                # The summaries cluster tighter than the grid's limits, so
                # the gather would cost more than it skips — take the dense
                # stacked kernel below instead (identical result either way).
                survivors = None
        else:
            survivors = None
        if survivors is not None:
            if survivors.size:
                rows = stacked[survivors]
                scales = stacked_scales[survivors] if stacked_scales is not None else None
                stat, base = metric.match_stats(vector, rows, scales)
                limits = per_row[survivors] if base is None else per_row[survivors] * base
                matched = survivors[stat <= limits]
            else:
                matched = survivors  # empty: every row pruned
            instrument = self.instrument
            offset = 0
            for (state, candidates, _, _, _), count in zip(participants, counts):
                stop = offset + count
                # First matched global row inside this member's slice, if any
                # (``matched`` is ascending, so this is the earliest match).
                position = int(np.searchsorted(matched, offset))
                if position < matched.size and matched[position] < stop:
                    index = int(matched[position]) - offset
                else:
                    index = None
                if instrument:
                    counters = state.match_counters
                    lo, hi = np.searchsorted(survivors, (offset, stop))
                    counters.rows_pruned += count - int(hi - lo)
                    counters.blocks_evaluated += 1
                offset = stop
                chosen = candidates[index] if index is not None else None
                self._record(state, key, frame, i, start, rel, candidates, chosen, vector)
            return
        stat, base = metric.match_stats(vector, stacked, stacked_scales)
        mask = stat <= (per_row if base is None else per_row * base)
        offset = 0
        for (state, candidates, _, _, _), count in zip(participants, counts):
            stop = offset + count
            index = first_match_index(mask[offset:stop])
            offset = stop
            chosen = candidates[index] if index is not None else None
            self._record(state, key, frame, i, start, rel, candidates, chosen, vector)

    @staticmethod
    def _record(
        state: _ConfigState,
        key,
        frame: RankFrame,
        index: int,
        start: float,
        rel: list,
        candidates,
        chosen: Optional[StoredSegment],
        vector,
    ) -> None:
        """One config's match/store bookkeeping for one frame row.

        Mirrors the tail of the serial reducer's loop exactly: record the
        execution, update the chosen representative on a match (refreshing
        its cached rows if the metric mutates it), or store the segment as a
        new representative — seeding its vector cache with a private copy of
        the family row (a frame row is a view that would pin the whole group
        matrix) and handing the row to the bucket so it is never recomputed.

        ``rel`` is the caller's one-element cache of the materialized
        normalised segment; it is only filled when some config actually
        needs the object.
        """
        reduced = state.reduced
        if chosen is not None:
            reduced.n_matches += 1
            reduced.execs.append((chosen.segment_id, start))
            reduced.exec_matched.append(True)
            if state.default_on_match:
                chosen.count += 1
            else:
                relative = rel[0]
                if relative is None:
                    relative = rel[0] = frame.segment(index)
                state.metric.on_match(relative, chosen)
            if state.mutates:
                refresh = getattr(candidates, "refresh", None)
                if refresh is not None:
                    refresh(chosen)
        else:
            if state.mutates:
                # This config will rewrite the stored timestamps in place
                # (iter_avg's running mean), so it must not share the
                # materialized segment object with the other configs.
                to_store = frame.segment(index)
            else:
                to_store = rel[0]
                if to_store is None:
                    to_store = rel[0] = frame.segment(index)
            stored = StoredSegment(segment_id=state.next_id, segment=to_store)
            state.next_id += 1
            if vector is not None and not state.mutates:
                row = np.array(vector)
                stored.cached_vector(state.vector_key, lambda _s, _row=row: _row)
                if state.add_built is not None:
                    state.add_built(key, stored, state.metric, row)
                else:
                    state.store.add(key, stored)
            else:
                state.store.add(key, stored)
            reduced.stored.append(stored)
            reduced.execs.append((stored.segment_id, start))
            reduced.exec_matched.append(False)

    # -- whole-source reduction ----------------------------------------------------

    def sweep(self, source: SegmentSource, *, name: Optional[str] = None) -> SweepResult:
        """One shared pass over every rank of ``source``, for the whole grid."""
        started = time.perf_counter()
        name = name or source_name(source)
        with obs.span("sweep.run", dispatch="inline", configs=self.plan.n_configs):
            rank_sweeps = [
                self.sweep_rank(rank, frame)
                for rank, frame in rank_frame_streams(source)
            ]
            return self._assemble(name, rank_sweeps, started, dispatch="inline")

    def _assemble(
        self,
        name: str,
        rank_sweeps: list[_RankSweep],
        started: float,
        *,
        dispatch: str,
    ) -> SweepResult:
        """Reassemble per-rank sweeps (in rank-stream order) into the grid."""
        outcomes: list[ConfigOutcome] = []
        for config in self.plan.configs:
            metric = config.create()
            reduced = ReducedTrace(
                name=name, method=metric.name, threshold=metric.threshold
            )
            store = StoreCounters()
            match: Optional[MatchCounters] = MatchCounters() if self.instrument else None
            for rank_sweep in rank_sweeps:
                reduced.ranks.append(rank_sweep.reduced[config.key])
                store = store.merged_with(rank_sweep.store_counters[config.key])
                if match is not None and config.key in rank_sweep.match_counters:
                    match = match.merged_with(rank_sweep.match_counters[config.key])
            outcomes.append(
                ConfigOutcome(config=config, reduced=reduced, store=store, match=match)
            )
        stats = SweepStats(
            n_configs=self.plan.n_configs,
            n_families=self.plan.n_families,
            n_ranks=len(rank_sweeps),
            n_segments=sum(r.n_segments for r in rank_sweeps),
            segments_materialized=sum(r.segments_materialized for r in rank_sweeps),
            vector_builds=sum(r.vector_builds for r in rank_sweeps),
            vector_builds_naive=sum(r.vector_builds_naive for r in rank_sweeps),
            total_seconds=time.perf_counter() - started,
            dispatch=dispatch,
        )
        recorder = obs.current_recorder()
        if recorder is not None:
            stats.record_to(recorder.registry)
        return SweepResult(name=name, outcomes=outcomes, stats=stats)


def sweep_source(
    source: SegmentSource,
    plan: SweepPlan | Iterable,
    *,
    store_capacity: Optional[int] = None,
    instrument: bool = False,
    name: Optional[str] = None,
) -> SweepResult:
    """Convenience wrapper: ``SweepEngine(plan).sweep(source)``."""
    return SweepEngine(
        plan, store_capacity=store_capacity, instrument=instrument
    ).sweep(source, name=name)
