"""Multi-configuration sweep engine: one-pass reduction across config grids.

The paper's evaluation is dominated by *grids* of reductions — every
similarity method swept over ~6 thresholds on every workload (Section 5.1,
Figures 9–19), and all nine methods at their best thresholds on every
workload (Section 5.2).  Running each (method, threshold) combination through
the serial :class:`~repro.core.reducer.TraceReducer` re-streams the segments
and recomputes the same per-segment feature vectors once per configuration.

This package evaluates an entire grid in a **single pass** over the trace:

* :mod:`repro.sweep.plan` — :class:`SweepPlan` expands method/threshold grids
  into :class:`SweepConfig`\\ s and groups them into *feature families*
  (configs whose metrics consume identical feature vectors, e.g. all
  euclidean thresholds);
* :mod:`repro.sweep.engine` — :class:`SweepEngine` feeds one shared segment
  stream to N independent reducer/store states, computing each family's
  feature vector once per segment and running the batched ``match_batch``
  kernels per config against that config's own candidate buckets;
* :mod:`repro.sweep.results` — :class:`SweepResult`, a grid of per-config
  reduced traces plus sharing statistics, convertible to
  :class:`~repro.evaluation.runner.EvaluationResult` rows.

Every config's reduced trace is byte-identical to running that config alone
through the serial reducer — the sweep changes the schedule, never the
algorithm.
"""

from repro.sweep.plan import FeatureFamily, SweepConfig, SweepPlan
from repro.sweep.engine import SweepEngine, SweepStats, sweep_source
from repro.sweep.results import ConfigOutcome, SweepResult

__all__ = [
    "SweepConfig",
    "FeatureFamily",
    "SweepPlan",
    "SweepEngine",
    "SweepStats",
    "sweep_source",
    "ConfigOutcome",
    "SweepResult",
]
