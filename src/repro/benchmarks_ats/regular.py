"""Benchmarks with regular behaviour.

Each benchmark exhibits the same performance problem with the same severity in
every iteration (Section 4.1 of the paper), so every iteration's segment is
*nearly* identical — the ideal case for similarity-based reduction.  All five
ATS behaviours used in the paper are provided:

================  ======================  ==========================
benchmark         communication category  expected diagnosis
================  ======================  ==========================
late_sender       1 → 1                   Late Sender at MPI_Recv
late_receiver     1 → 1 (synchronous)     Late Receiver at MPI_Ssend
early_gather      N → 1                   Early Gather at MPI_Gather
late_broadcast    1 → N                   Late Broadcast at MPI_Bcast
imbalance_at_mpi_barrier  N → N           Wait at Barrier at MPI_Barrier
================  ======================  ==========================

All workloads default to 8 processes, matching the paper.
"""

from __future__ import annotations

from repro.benchmarks_ats.base import Workload, jittered
from repro.simulator.engine import SimulatorConfig
from repro.simulator.program import RankProgramBuilder, build_program
from repro.util.rng import rng_for
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "late_sender",
    "late_receiver",
    "early_gather",
    "late_broadcast",
    "imbalance_at_mpi_barrier",
]

#: Default work quantum (µs); the paper's benchmarks use roughly 1 ms periods.
DEFAULT_WORK_US = 1000.0
#: Default severity of the induced performance problem (µs per iteration).
DEFAULT_SEVERITY_US = 500.0
#: Default relative jitter of work durations.
DEFAULT_JITTER = 0.02


def _wrap_main_loop(builder: RankProgramBuilder, iterations: int):
    """Standard program skeleton: init segment, main loop, final segment."""
    with builder.segment("init"):
        builder.mpi_init()
    yield from builder.loop("main.1", iterations)
    with builder.segment("final"):
        builder.mpi_finalize()


def _check_common(nprocs: int, iterations: int, work: float, severity: float, jitter: float) -> None:
    check_positive("nprocs", nprocs)
    check_positive("iterations", iterations)
    check_positive("work", work)
    check_non_negative("severity", severity)
    check_non_negative("jitter", jitter)


def late_sender(
    nprocs: int = 8,
    iterations: int = 100,
    *,
    work: float = DEFAULT_WORK_US,
    severity: float = DEFAULT_SEVERITY_US,
    jitter: float = DEFAULT_JITTER,
    seed: int = 0,
) -> Workload:
    """Receivers block in ``MPI_Recv`` because the paired sender is late.

    Ranks are paired (0↔1, 2↔3, ...); even ranks do ``severity`` µs of extra
    work before sending, so the odd ranks wait that long in every iteration.
    """
    _check_common(nprocs, iterations, work, severity, jitter)
    if nprocs % 2:
        raise ValueError("late_sender requires an even number of processes")

    def body(b: RankProgramBuilder, rank: int) -> None:
        rng = rng_for(seed, "late_sender", rank)
        is_sender = rank % 2 == 0
        peer = rank + 1 if is_sender else rank - 1
        for _ in _wrap_main_loop(b, iterations):
            if is_sender:
                b.compute("do_work", jittered(rng, work + severity, jitter))
                b.send(peer)
            else:
                b.compute("do_work", jittered(rng, work, jitter))
                b.recv(peer)

    return Workload(
        name="late_sender",
        program=build_program("late_sender", nprocs, body),
        config=SimulatorConfig(seed=seed),
        description="even ranks send late; odd ranks wait in MPI_Recv every iteration",
        expected_metric="Late Sender",
        expected_location="MPI_Recv",
    )


def late_receiver(
    nprocs: int = 8,
    iterations: int = 100,
    *,
    work: float = DEFAULT_WORK_US,
    severity: float = DEFAULT_SEVERITY_US,
    jitter: float = DEFAULT_JITTER,
    seed: int = 0,
) -> Workload:
    """Synchronous senders block in ``MPI_Ssend`` because the receiver is late."""
    _check_common(nprocs, iterations, work, severity, jitter)
    if nprocs % 2:
        raise ValueError("late_receiver requires an even number of processes")

    def body(b: RankProgramBuilder, rank: int) -> None:
        rng = rng_for(seed, "late_receiver", rank)
        is_sender = rank % 2 == 0
        peer = rank + 1 if is_sender else rank - 1
        for _ in _wrap_main_loop(b, iterations):
            if is_sender:
                b.compute("do_work", jittered(rng, work, jitter))
                b.ssend(peer)
            else:
                b.compute("do_work", jittered(rng, work + severity, jitter))
                b.recv(peer)

    return Workload(
        name="late_receiver",
        program=build_program("late_receiver", nprocs, body),
        config=SimulatorConfig(seed=seed),
        description="odd ranks receive late; even ranks wait in MPI_Ssend every iteration",
        expected_metric="Late Receiver",
        expected_location="MPI_Ssend",
    )


def early_gather(
    nprocs: int = 8,
    iterations: int = 100,
    *,
    work: float = DEFAULT_WORK_US,
    severity: float = DEFAULT_SEVERITY_US,
    jitter: float = DEFAULT_JITTER,
    root: int = 0,
    seed: int = 0,
) -> Workload:
    """The gather root arrives early and waits for the other ranks."""
    _check_common(nprocs, iterations, work, severity, jitter)

    def body(b: RankProgramBuilder, rank: int) -> None:
        rng = rng_for(seed, "early_gather", rank)
        for _ in _wrap_main_loop(b, iterations):
            duration = work if rank == root else work + severity
            b.compute("do_work", jittered(rng, duration, jitter))
            b.gather(root)

    return Workload(
        name="early_gather",
        program=build_program("early_gather", nprocs, body),
        config=SimulatorConfig(seed=seed),
        description="gather root arrives early and waits for the senders",
        expected_metric="Early Gather",
        expected_location="MPI_Gather",
    )


def late_broadcast(
    nprocs: int = 8,
    iterations: int = 100,
    *,
    work: float = DEFAULT_WORK_US,
    severity: float = DEFAULT_SEVERITY_US,
    jitter: float = DEFAULT_JITTER,
    root: int = 0,
    seed: int = 0,
) -> Workload:
    """The broadcast root is late; every other rank waits in ``MPI_Bcast``."""
    _check_common(nprocs, iterations, work, severity, jitter)

    def body(b: RankProgramBuilder, rank: int) -> None:
        rng = rng_for(seed, "late_broadcast", rank)
        for _ in _wrap_main_loop(b, iterations):
            duration = work + severity if rank == root else work
            b.compute("do_work", jittered(rng, duration, jitter))
            b.bcast(root)

    return Workload(
        name="late_broadcast",
        program=build_program("late_broadcast", nprocs, body),
        config=SimulatorConfig(seed=seed),
        description="broadcast root is late; all receivers wait in MPI_Bcast",
        expected_metric="Late Broadcast",
        expected_location="MPI_Bcast",
    )


def imbalance_at_mpi_barrier(
    nprocs: int = 8,
    iterations: int = 100,
    *,
    work: float = DEFAULT_WORK_US,
    severity: float = DEFAULT_SEVERITY_US,
    jitter: float = DEFAULT_JITTER,
    seed: int = 0,
) -> Workload:
    """One rank carries extra load, so everyone else waits at ``MPI_Barrier``."""
    _check_common(nprocs, iterations, work, severity, jitter)
    heavy_rank = nprocs - 1

    def body(b: RankProgramBuilder, rank: int) -> None:
        rng = rng_for(seed, "imbalance_at_mpi_barrier", rank)
        for _ in _wrap_main_loop(b, iterations):
            duration = work + severity if rank == heavy_rank else work
            b.compute("do_work", jittered(rng, duration, jitter))
            b.barrier()

    return Workload(
        name="imbalance_at_mpi_barrier",
        program=build_program("imbalance_at_mpi_barrier", nprocs, body),
        config=SimulatorConfig(seed=seed),
        description="the last rank is overloaded; all other ranks wait at MPI_Barrier",
        expected_metric="Wait at Barrier",
        expected_location="MPI_Barrier",
    )
