"""Common infrastructure for benchmark generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.simulator.engine import SimulatorConfig, simulate
from repro.simulator.program import Program
from repro.trace.trace import SegmentedTrace, Trace

__all__ = ["Workload", "jittered"]


@dataclass(slots=True)
class Workload:
    """A runnable evaluation workload.

    Attributes
    ----------
    name:
        Workload name as used in the paper (e.g. ``"late_sender"``,
        ``"1to1r_1024"``, ``"sweep3d_8p"``).
    program:
        The SPMD program to simulate.
    config:
        Simulator configuration (machine model, noise, seed).
    description:
        One-line description of the behaviour the workload exhibits.
    expected_metric:
        The KOJAK-style metric the workload is designed to trigger (used by
        tests and by the trend tables to label the "major" diagnosis).
    expected_location:
        The traced function name where that metric should show up.
    """

    name: str
    program: Program
    config: SimulatorConfig
    description: str = ""
    expected_metric: Optional[str] = None
    expected_location: Optional[str] = None

    @property
    def nprocs(self) -> int:
        return self.program.nprocs

    def run(self) -> Trace:
        """Simulate the workload and return its raw trace."""
        return simulate(self.program, self.config)

    def run_segmented(self) -> SegmentedTrace:
        """Simulate the workload and return the segmented trace."""
        return self.run().segmented()


def jittered(rng: np.random.Generator, nominal: float, jitter: float) -> float:
    """Return ``nominal`` µs with multiplicative Gaussian jitter.

    Measured durations of "identical" work are never exactly equal; the paper
    relies on this (otherwise exact matching would suffice).  The jitter is a
    relative standard deviation (e.g. 0.02 = 2 %), truncated so a duration can
    never drop below half or grow beyond twice its nominal value.
    """
    if nominal <= 0:
        return 0.0
    if jitter <= 0:
        return float(nominal)
    factor = float(np.clip(1.0 + rng.normal(0.0, jitter), 0.5, 2.0))
    return float(nominal * factor)
