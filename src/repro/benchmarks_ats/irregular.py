"""Benchmarks with irregular behaviour (system interference).

These recreate the paper's second benchmark category: perfectly balanced
~1 ms work periods followed by a communication step, disturbed only by
simulated ASCI-Q-style operating-system interference (Petrini et al.).  Most
iterations look identical; occasionally an interrupt steals CPU time from one
rank, delaying everyone who synchronises with it.  A good reduction method
must *not* merge disturbed and undisturbed iterations, or the periodic
behaviour change disappears from the reduced trace.

The paper runs each of five communication patterns with two interference
scenarios: the noise of a 32-node run (``_32``) and the noise a 1024-process
run would experience (``_1024``), both simulated on 32 ranks.
"""

from __future__ import annotations

from repro.benchmarks_ats.base import Workload, jittered
from repro.simulator.engine import SimulatorConfig
from repro.simulator.noise import asci_q_noise
from repro.simulator.program import RankProgramBuilder, build_program
from repro.util.rng import rng_for
from repro.util.validation import check_non_negative, check_positive

__all__ = ["INTERFERENCE_PATTERNS", "interference"]

#: Communication patterns of the interference suite, mapping the paper's
#: pattern names to (expected metric, expected code location).
INTERFERENCE_PATTERNS: dict[str, tuple[str, str]] = {
    "Nto1": ("Early Gather", "MPI_Gather"),
    "1toN": ("Late Broadcast", "MPI_Bcast"),
    "1to1r": ("Late Sender", "MPI_Recv"),
    "1to1s": ("Late Receiver", "MPI_Ssend"),
    "NtoN": ("Wait at Barrier", "MPI_Barrier"),
}


def interference(
    pattern: str,
    simulated_procs: int,
    *,
    nprocs: int = 32,
    iterations: int = 100,
    work: float = 1000.0,
    jitter: float = 0.01,
    seed: int = 0,
) -> Workload:
    """Build one interference benchmark.

    Parameters
    ----------
    pattern:
        One of :data:`INTERFERENCE_PATTERNS` (``"Nto1"``, ``"1toN"``,
        ``"1to1r"``, ``"1to1s"``, ``"NtoN"``).
    simulated_procs:
        Size of the machine whose noise is simulated (32 or 1024 in the
        paper); becomes the ``_32`` / ``_1024`` suffix of the workload name.
    nprocs:
        Number of simulated ranks (the paper uses 32).
    iterations:
        Main-loop iterations.
    work:
        Balanced per-iteration work in µs (≈1 ms in the paper).
    jitter:
        Relative jitter of the work durations.
    seed:
        Seed for jitter and noise phases.
    """
    if pattern not in INTERFERENCE_PATTERNS:
        raise ValueError(
            f"unknown interference pattern {pattern!r}; expected one of "
            f"{sorted(INTERFERENCE_PATTERNS)}"
        )
    check_positive("nprocs", nprocs)
    check_positive("iterations", iterations)
    check_positive("work", work)
    check_non_negative("jitter", jitter)
    if pattern in ("1to1r", "1to1s") and nprocs % 2:
        raise ValueError(f"pattern {pattern!r} requires an even number of processes")

    name = f"{pattern}_{simulated_procs}"
    metric, location = INTERFERENCE_PATTERNS[pattern]

    def body(b: RankProgramBuilder, rank: int) -> None:
        rng = rng_for(seed, "interference", name, rank)
        with b.segment("init"):
            b.mpi_init()
        for _ in b.loop("main.1", iterations):
            b.compute("do_work", jittered(rng, work, jitter))
            if pattern == "Nto1":
                b.gather(0)
            elif pattern == "1toN":
                b.bcast(0)
            elif pattern == "NtoN":
                b.barrier()
            elif pattern == "1to1r":
                # standard send + blocking receive: interference on the sender
                # shows up as Late Sender waits at the receiver.
                if rank % 2 == 0:
                    b.send(rank + 1)
                else:
                    b.recv(rank - 1)
            elif pattern == "1to1s":
                # synchronous send: interference on the receiver shows up as
                # Late Receiver waits at the sender.
                if rank % 2 == 0:
                    b.ssend(rank + 1)
                else:
                    b.recv(rank - 1)
        with b.segment("final"):
            b.mpi_finalize()

    config = SimulatorConfig(
        noise=asci_q_noise(nprocs, simulated_procs, seed=seed),
        seed=seed,
    )
    return Workload(
        name=name,
        program=build_program(name, nprocs, body),
        config=config,
        description=(
            f"balanced 1 ms work + {pattern} communication, disturbed by simulated "
            f"system interference scaled to {simulated_procs} processes"
        ),
        expected_metric=metric,
        expected_location=location,
    )
