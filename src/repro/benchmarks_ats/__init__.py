"""APART-Test-Suite-style benchmark generators.

The paper builds its evaluation programs with the APART Test Suite (ATS), a
collection of utilities that create parallel programs with *known* performance
behaviour.  This subpackage recreates those programs on top of the simulator:

* regular benchmarks — the same performance problem with the same severity in
  every iteration (``late_sender``, ``late_receiver``, ``early_gather``,
  ``late_broadcast``, ``imbalance_at_mpi_barrier``);
* irregular benchmarks — perfectly balanced work disturbed only by simulated
  ASCI-Q-style system interference, for each communication category
  (``Nto1``, ``1toN``, ``1to1r``, ``1to1s``, ``NtoN``) at two noise scales
  (``_32`` and ``_1024``);
* ``dyn_load_balance`` — progressively growing imbalance reset by a periodic
  load balancer.

Every generator returns a :class:`~repro.benchmarks_ats.base.Workload`
(program + simulator configuration + expected diagnosis), so tests and the
evaluation harness know what behaviour the trace *should* contain.
"""

from repro.benchmarks_ats.base import Workload, jittered
from repro.benchmarks_ats.regular import (
    early_gather,
    imbalance_at_mpi_barrier,
    late_broadcast,
    late_receiver,
    late_sender,
)
from repro.benchmarks_ats.irregular import INTERFERENCE_PATTERNS, interference
from repro.benchmarks_ats.load_balance import dyn_load_balance

__all__ = [
    "Workload",
    "jittered",
    "late_sender",
    "late_receiver",
    "early_gather",
    "late_broadcast",
    "imbalance_at_mpi_barrier",
    "interference",
    "INTERFERENCE_PATTERNS",
    "dyn_load_balance",
]
