"""Dynamic-load-balancing benchmark.

Recreates the paper's ``dyn_load_balance`` program: per-iteration work starts
at about 1 ms and drifts apart — the upper half of the ranks does a little
more work every iteration, the lower half a little less — until the "load
balancer" triggers and resets everyone to equal work.  The resulting
performance problem is imbalance at ``MPI_Alltoall`` (N-to-N category): the
under-loaded lower ranks arrive early and wait for the overloaded upper ranks,
and the imbalance severity itself varies over time.

This is the workload where iteration-averaging methods are expected to wash
out the time-varying behaviour (Section 5.2.3, Figure 7 of the paper).
"""

from __future__ import annotations

from repro.benchmarks_ats.base import Workload, jittered
from repro.simulator.engine import SimulatorConfig
from repro.simulator.program import RankProgramBuilder, build_program
from repro.util.rng import rng_for
from repro.util.validation import check_non_negative, check_positive

__all__ = ["dyn_load_balance", "work_schedule"]


def work_schedule(
    rank: int,
    nprocs: int,
    iterations: int,
    *,
    base_work: float,
    drift: float,
    rebalance_period: int,
) -> list[float]:
    """Nominal per-iteration work for one rank, before jitter.

    Upper-half ranks gain ``drift`` µs per iteration since the last rebalance,
    lower-half ranks lose the same amount (floored at 10 % of the base), and
    every ``rebalance_period`` iterations the "load balancer" resets the drift.
    """
    check_positive("base_work", base_work)
    check_non_negative("drift", drift)
    check_positive("rebalance_period", rebalance_period)
    upper_half = rank >= nprocs // 2
    schedule: list[float] = []
    for iteration in range(iterations):
        steps_since_rebalance = iteration % rebalance_period
        delta = drift * steps_since_rebalance
        if upper_half:
            work = base_work + delta
        else:
            work = max(0.1 * base_work, base_work - delta)
        schedule.append(work)
    return schedule


def dyn_load_balance(
    nprocs: int = 8,
    iterations: int = 100,
    *,
    base_work: float = 1000.0,
    drift: float = 60.0,
    rebalance_period: int = 10,
    jitter: float = 0.02,
    seed: int = 0,
) -> Workload:
    """Build the dynamic-load-balancing workload (8 processes in the paper)."""
    check_positive("nprocs", nprocs)
    check_positive("iterations", iterations)
    check_non_negative("jitter", jitter)

    def body(b: RankProgramBuilder, rank: int) -> None:
        rng = rng_for(seed, "dyn_load_balance", rank)
        schedule = work_schedule(
            rank,
            nprocs,
            iterations,
            base_work=base_work,
            drift=drift,
            rebalance_period=rebalance_period,
        )
        with b.segment("init"):
            b.mpi_init()
        for i in b.loop("main.1", iterations):
            b.compute("do_work", jittered(rng, schedule[i], jitter))
            b.alltoall()
        with b.segment("final"):
            b.mpi_finalize()

    return Workload(
        name="dyn_load_balance",
        program=build_program("dyn_load_balance", nprocs, body),
        config=SimulatorConfig(seed=seed),
        description=(
            "work drifts apart between the lower and upper half of the ranks until a "
            "periodic load balancer resets it; imbalance shows up at MPI_Alltoall"
        ),
        expected_metric="Wait at NxN",
        expected_location="MPI_Alltoall",
    )
