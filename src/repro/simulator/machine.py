"""Virtual machine / interconnect cost model.

The cost model is deliberately simple (latency + bandwidth point-to-point,
log-P collectives): the trace-reduction study only needs timings with the
right *structure* (waits dominated by application imbalance, communication
costs small relative to ~1 ms work periods), not cycle accuracy.
All times are microseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive

__all__ = ["MachineModel"]


@dataclass(frozen=True, slots=True)
class MachineModel:
    """Interconnect and MPI software cost parameters.

    Attributes
    ----------
    latency:
        One-way point-to-point latency in µs.
    bandwidth:
        Point-to-point bandwidth in bytes/µs (1000 bytes/µs = 1 GB/s).
    mpi_overhead:
        Local software overhead charged to every MPI call, in µs.
    collective_base:
        Base cost of a collective, in µs.
    collective_log_factor:
        Additional per-``log2(nprocs)`` cost of a collective, in µs.
    """

    latency: float = 5.0
    bandwidth: float = 1000.0
    mpi_overhead: float = 2.0
    collective_base: float = 5.0
    collective_log_factor: float = 3.0

    def __post_init__(self) -> None:
        check_non_negative("latency", self.latency)
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("mpi_overhead", self.mpi_overhead)
        check_non_negative("collective_base", self.collective_base)
        check_non_negative("collective_log_factor", self.collective_log_factor)

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` between two ranks (latency + payload)."""
        return self.latency + nbytes / self.bandwidth

    def local_send_cost(self, nbytes: int) -> float:
        """Local cost of an eager (standard-mode) send: overhead + injection."""
        return self.mpi_overhead + nbytes / self.bandwidth

    def recv_copy_cost(self, nbytes: int) -> float:
        """Local cost of delivering a matched message into the receive buffer."""
        return self.mpi_overhead + nbytes / self.bandwidth

    def collective_cost(self, nprocs: int, nbytes: int) -> float:
        """Cost of a collective once every participant has arrived."""
        if nprocs < 1:
            raise ValueError(f"collective requires at least one rank, got {nprocs}")
        stages = math.log2(nprocs) if nprocs > 1 else 0.0
        return (
            self.collective_base
            + self.collective_log_factor * stages
            + (nbytes / self.bandwidth) * max(1.0, stages)
        )
