"""System-interference (noise) models.

The irregular benchmarks of the paper simulate the ASCI Q system interference
identified by Petrini et al. (SC'03): operating-system daemons and kernel
activity periodically steal CPU time from application processes, so a small
fraction of iterations take noticeably longer even though the application
load is perfectly balanced.

Here the noise is a set of periodic interrupt sources per rank; when a compute
region of duration ``d`` starts at time ``t`` on a rank, every interrupt that
fires inside ``[t, t + d)`` adds its duration to the region.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.util.rng import rng_for
from repro.util.validation import check_non_negative, check_positive

__all__ = ["NoiseSource", "NoiseModel", "NullNoise", "PeriodicNoise", "asci_q_noise"]


@dataclass(frozen=True, slots=True)
class NoiseSource:
    """One periodic interrupt source (a "daemon").

    Attributes
    ----------
    period:
        µs between interrupt firings.
    duration:
        µs stolen per firing.
    phase:
        Offset of the first firing in µs.
    """

    period: float
    duration: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        check_positive("period", self.period)
        check_non_negative("duration", self.duration)
        check_non_negative("phase", self.phase)

    def firings_in(self, start: float, end: float) -> int:
        """Number of firings with fire time in ``[start, end)``."""
        if end <= start:
            return 0
        # Fire times are phase + k*period for k >= 0.
        first_k = math.ceil((start - self.phase) / self.period)
        first_k = max(first_k, 0)
        last_k = math.ceil((end - self.phase) / self.period) - 1
        if (end - self.phase) / self.period == math.floor((end - self.phase) / self.period):
            # end is exactly a fire time; interval is half-open so exclude it.
            last_k = int((end - self.phase) / self.period) - 1
        return max(0, last_k - first_k + 1)


class NoiseModel(ABC):
    """Interface for compute-time perturbation models."""

    @abstractmethod
    def extra_delay(self, rank: int, start: float, duration: float) -> float:
        """Extra µs added to a compute region of ``duration`` starting at ``start``."""


class NullNoise(NoiseModel):
    """No interference (the regular benchmarks and Sweep3D runs)."""

    def extra_delay(self, rank: int, start: float, duration: float) -> float:
        return 0.0


class PeriodicNoise(NoiseModel):
    """Per-rank periodic interrupt sources.

    Parameters
    ----------
    sources_by_rank:
        For each rank, the list of interrupt sources affecting it.
    """

    def __init__(self, sources_by_rank: Sequence[Sequence[NoiseSource]]):
        self._sources: list[tuple[NoiseSource, ...]] = [tuple(s) for s in sources_by_rank]

    @property
    def nprocs(self) -> int:
        return len(self._sources)

    def sources_for(self, rank: int) -> tuple[NoiseSource, ...]:
        return self._sources[rank]

    def extra_delay(self, rank: int, start: float, duration: float) -> float:
        if rank >= len(self._sources):
            raise IndexError(f"no noise sources configured for rank {rank}")
        if duration <= 0:
            return 0.0
        extra = 0.0
        for source in self._sources[rank]:
            extra += source.firings_in(start, start + duration) * source.duration
        return extra


#: Interrupt sources modelled per node, as (period µs, duration µs) pairs.
#: Loosely patterned after the Petrini et al. characterisation: frequent short
#: kernel/timer activity, periodic daemons, and rare long cluster-management
#: events.  Durations are chosen relative to the ~1000 µs work quanta of the
#: interference benchmarks so that a minority of iterations is visibly
#: disturbed.
_ASCI_Q_SOURCES: tuple[tuple[float, float], ...] = (
    (23_000.0, 250.0),     # fine-grain kernel activity
    (101_000.0, 1_500.0),  # node-local daemons
    (407_000.0, 6_000.0),  # cluster management heartbeat
)


def asci_q_noise(nprocs: int, simulated_procs: int, seed: int = 0) -> PeriodicNoise:
    """Build the interference model used by the irregular benchmarks.

    Parameters
    ----------
    nprocs:
        Number of ranks actually simulated (the paper uses 32).
    simulated_procs:
        Number of processes whose aggregate interference is simulated (32 or
        1024 in the paper).  A larger machine has proportionally more noise
        sources competing for the synchronising collectives, which we model by
        scaling interrupt durations with ``log2`` of the process ratio — the
        effect Petrini et al. observed is that noise costs grow with the
        probability that *some* rank is hit, which grows roughly
        logarithmically for periodic sources.
    seed:
        Seed for the per-rank phases.
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    if simulated_procs < nprocs:
        raise ValueError(
            f"simulated_procs ({simulated_procs}) must be >= nprocs ({nprocs})"
        )
    ratio = simulated_procs / nprocs
    scale = 1.0 + math.log2(ratio) if ratio > 1 else 1.0
    sources_by_rank: list[list[NoiseSource]] = []
    for rank in range(nprocs):
        rng = rng_for(seed, "asci_q_noise", rank, simulated_procs)
        rank_sources = []
        for period, duration in _ASCI_Q_SOURCES:
            phase = float(rng.uniform(0.0, period))
            rank_sources.append(
                NoiseSource(period=period, duration=duration * scale, phase=phase)
            )
        sources_by_rank.append(rank_sources)
    return PeriodicNoise(sources_by_rank)
