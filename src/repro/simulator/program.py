"""SPMD program model for the simulator.

A :class:`Program` is, for every rank, a flat list of operations:

* :class:`SegmentBegin` / :class:`SegmentEnd` — segment markers (Figure 1 of
  the paper: ``init``, one marker pair per loop iteration, ``final``);
* :class:`Compute` — a local work region with a nominal duration in µs;
* :class:`MpiOp` — an MPI call with its parameters.

Benchmark and application generators build programs through
:class:`RankProgramBuilder`, which offers loop/segment helpers so the marking
scheme of the paper falls out naturally.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence, Union

from repro.trace.events import MpiCallInfo
from repro.util.validation import check_non_negative, check_rank

__all__ = [
    "SegmentBegin",
    "SegmentEnd",
    "Compute",
    "MpiOp",
    "Op",
    "Program",
    "RankProgramBuilder",
    "build_program",
]


@dataclass(frozen=True, slots=True)
class SegmentBegin:
    """Start of a segment with hierarchical context name (e.g. ``main.2.1``)."""

    context: str


@dataclass(frozen=True, slots=True)
class SegmentEnd:
    """End of the segment with the same context name."""

    context: str


@dataclass(frozen=True, slots=True)
class Compute:
    """A local work region.

    ``duration`` is the nominal duration in µs; the engine may add noise.
    """

    name: str
    duration: float

    def __post_init__(self) -> None:
        check_non_negative(f"duration of compute {self.name!r}", self.duration)


@dataclass(frozen=True, slots=True)
class MpiOp:
    """An MPI call: traced function name plus call parameters."""

    name: str
    info: MpiCallInfo


Op = Union[SegmentBegin, SegmentEnd, Compute, MpiOp]


@dataclass(slots=True)
class Program:
    """A complete SPMD program: one op list per rank."""

    name: str
    nprocs: int
    rank_ops: list[list[Op]]

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {self.nprocs}")
        if len(self.rank_ops) != self.nprocs:
            raise ValueError(
                f"program {self.name!r} has op lists for {len(self.rank_ops)} ranks "
                f"but nprocs={self.nprocs}"
            )

    @property
    def num_ops(self) -> int:
        return sum(len(ops) for ops in self.rank_ops)

    def ops_for(self, rank: int) -> list[Op]:
        check_rank(rank, self.nprocs)
        return self.rank_ops[rank]


_DEFAULT_NAMES = {
    "send": "MPI_Send",
    "ssend": "MPI_Ssend",
    "recv": "MPI_Recv",
    "sendrecv": "MPI_Sendrecv",
    "barrier": "MPI_Barrier",
    "bcast": "MPI_Bcast",
    "scatter": "MPI_Scatter",
    "gather": "MPI_Gather",
    "reduce": "MPI_Reduce",
    "allgather": "MPI_Allgather",
    "allreduce": "MPI_Allreduce",
    "alltoall": "MPI_Alltoall",
}


class RankProgramBuilder:
    """Builds the op list of one rank.

    The builder is handed to a body function by :func:`build_program`; the body
    calls compute / MPI / segment helpers in program order.
    """

    def __init__(self, rank: int, nprocs: int):
        check_rank(rank, nprocs)
        self.rank = rank
        self.nprocs = nprocs
        self.ops: list[Op] = []
        self._open_segments: list[str] = []

    # -- segments -----------------------------------------------------------

    @contextmanager
    def segment(self, context: str) -> Iterator[None]:
        """Wrap the enclosed ops in a SEGMENT_BEGIN/SEGMENT_END pair."""
        self.begin_segment(context)
        try:
            yield
        finally:
            self.end_segment(context)

    def begin_segment(self, context: str) -> None:
        if self._open_segments:
            raise ValueError(
                f"segment {context!r} would nest inside {self._open_segments[-1]!r}; "
                "segments must not nest (stop the outer segment first)"
            )
        self._open_segments.append(context)
        self.ops.append(SegmentBegin(context))

    def end_segment(self, context: str) -> None:
        if not self._open_segments or self._open_segments[-1] != context:
            raise ValueError(f"end_segment({context!r}) does not match an open segment")
        self._open_segments.pop()
        self.ops.append(SegmentEnd(context))

    def loop(self, context: str, iterations: int) -> Iterator[int]:
        """Iterate ``iterations`` times, wrapping each iteration in a segment.

        Mirrors the paper's loop marking: a new segment starts at the top of
        each iteration and stops at the bottom.
        """
        if iterations < 0:
            raise ValueError(f"loop {context!r} cannot have negative iterations")
        for i in range(iterations):
            self.begin_segment(context)
            yield i
            self.end_segment(context)

    # -- local work ---------------------------------------------------------

    def compute(self, name: str, duration: float) -> None:
        """Add a local work region of ``duration`` µs."""
        self.ops.append(Compute(name=name, duration=float(duration)))

    # -- point-to-point -----------------------------------------------------

    def send(self, dest: int, *, tag: int = 0, nbytes: int = 1024, name: str | None = None) -> None:
        """Standard-mode (eager) send: completes locally, never blocks."""
        check_rank(dest, self.nprocs)
        self._mpi("send", name, peer=dest, tag=tag, nbytes=nbytes)

    def ssend(self, dest: int, *, tag: int = 0, nbytes: int = 1024, name: str | None = None) -> None:
        """Synchronous send: blocks until the matching receive has been posted."""
        check_rank(dest, self.nprocs)
        self._mpi("ssend", name, peer=dest, tag=tag, nbytes=nbytes)

    def recv(self, source: int, *, tag: int = 0, nbytes: int = 1024, name: str | None = None) -> None:
        """Blocking receive."""
        check_rank(source, self.nprocs)
        self._mpi("recv", name, peer=source, tag=tag, nbytes=nbytes)

    def sendrecv(
        self,
        dest: int,
        *,
        source: int | None = None,
        tag: int = 0,
        nbytes: int = 1024,
        name: str | None = None,
    ) -> None:
        """Combined send to ``dest`` and receive from ``source``.

        ``source`` defaults to ``dest`` (a symmetric pairwise exchange); a
        shift pattern such as a ring halo exchange passes a different source
        (``sendrecv(dest=right, source=left)``), exactly like ``MPI_Sendrecv``.
        The call blocks until the incoming message has arrived; the outgoing
        message is sent eagerly.
        """
        check_rank(dest, self.nprocs)
        if source is None:
            source = dest
        check_rank(source, self.nprocs)
        self._mpi("sendrecv", name, peer=dest, source=source, tag=tag, nbytes=nbytes)

    # -- collectives ---------------------------------------------------------

    def barrier(self, *, name: str | None = None) -> None:
        self._mpi("barrier", name, nbytes=0)

    def bcast(self, root: int, *, nbytes: int = 1024, name: str | None = None) -> None:
        check_rank(root, self.nprocs)
        self._mpi("bcast", name, root=root, nbytes=nbytes)

    def scatter(self, root: int, *, nbytes: int = 1024, name: str | None = None) -> None:
        check_rank(root, self.nprocs)
        self._mpi("scatter", name, root=root, nbytes=nbytes)

    def gather(self, root: int, *, nbytes: int = 1024, name: str | None = None) -> None:
        check_rank(root, self.nprocs)
        self._mpi("gather", name, root=root, nbytes=nbytes)

    def reduce(self, root: int, *, nbytes: int = 1024, name: str | None = None) -> None:
        check_rank(root, self.nprocs)
        self._mpi("reduce", name, root=root, nbytes=nbytes)

    def allgather(self, *, nbytes: int = 1024, name: str | None = None) -> None:
        self._mpi("allgather", name, nbytes=nbytes)

    def allreduce(self, *, nbytes: int = 1024, name: str | None = None) -> None:
        self._mpi("allreduce", name, nbytes=nbytes)

    def alltoall(self, *, nbytes: int = 1024, name: str | None = None) -> None:
        self._mpi("alltoall", name, nbytes=nbytes)

    # -- MPI environment -----------------------------------------------------

    def mpi_init(self) -> None:
        """``MPI_Init``: modelled as a barrier so all ranks start together."""
        self._mpi("barrier", "MPI_Init", nbytes=0)

    def mpi_finalize(self) -> None:
        """``MPI_Finalize``: modelled as a barrier at the end of the run."""
        self._mpi("barrier", "MPI_Finalize", nbytes=0)

    # -- internals -----------------------------------------------------------

    def _mpi(
        self,
        op: str,
        name: str | None,
        *,
        root: int | None = None,
        peer: int | None = None,
        source: int | None = None,
        tag: int | None = None,
        nbytes: int = 0,
    ) -> None:
        info = MpiCallInfo(op=op, root=root, peer=peer, source=source, tag=tag, nbytes=nbytes)
        self.ops.append(MpiOp(name=name or _DEFAULT_NAMES[op], info=info))

    def finish(self) -> list[Op]:
        """Validate and return the built op list."""
        if self._open_segments:
            raise ValueError(f"segments still open at end of program: {self._open_segments}")
        return self.ops


BodyFn = Callable[[RankProgramBuilder, int], None]


def build_program(name: str, nprocs: int, body: BodyFn) -> Program:
    """Build an SPMD program by running ``body(builder, rank)`` for every rank."""
    rank_ops: list[list[Op]] = []
    for rank in range(nprocs):
        builder = RankProgramBuilder(rank, nprocs)
        body(builder, rank)
        rank_ops.append(builder.finish())
    return Program(name=name, nprocs=nprocs, rank_ops=rank_ops)
