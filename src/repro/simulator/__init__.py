"""Discrete-event MPI simulator.

This subpackage replaces the paper's physical Linux cluster: SPMD rank
programs written against a small MPI-like operation set are executed on a
virtual machine model with correct blocking semantics (late senders make
receivers wait, collectives wait for the last arrival, ...), and a tracer
records the same time-stamped function entry/exit records plus segment
markers that the paper's Dyninst-based instrumentation produced.
"""

from repro.simulator.machine import MachineModel
from repro.simulator.noise import NoiseModel, NoiseSource, NullNoise, PeriodicNoise, asci_q_noise
from repro.simulator.program import (
    Compute,
    MpiOp,
    Op,
    Program,
    RankProgramBuilder,
    SegmentBegin,
    SegmentEnd,
    build_program,
)
from repro.simulator.engine import DeadlockError, SimulationEngine, SimulatorConfig, simulate

__all__ = [
    "MachineModel",
    "NoiseModel",
    "NoiseSource",
    "NullNoise",
    "PeriodicNoise",
    "asci_q_noise",
    "Op",
    "Compute",
    "MpiOp",
    "SegmentBegin",
    "SegmentEnd",
    "Program",
    "RankProgramBuilder",
    "build_program",
    "SimulationEngine",
    "SimulatorConfig",
    "DeadlockError",
    "simulate",
]
