"""Discrete-event execution engine.

The engine executes a :class:`~repro.simulator.program.Program` on the virtual
machine model and produces a raw :class:`~repro.trace.trace.Trace`.  Each rank
has its own monotonic virtual clock; MPI blocking semantics are:

* ``recv`` blocks until the matching send has been *posted* (so a late sender
  makes the receiver wait — the Late Sender pattern);
* ``ssend`` blocks until the matching receive has been posted (Late Receiver);
* ``send`` (standard mode) completes locally, eager-protocol style;
* ``sendrecv`` synchronises the two partners pairwise;
* rooted fan-out collectives (``bcast``/``scatter``) make non-roots wait for
  the root (Late Broadcast);
* rooted fan-in collectives (``gather``/``reduce``) make the root wait for the
  last sender (Early Gather/Reduce) while non-roots leave immediately;
* symmetric collectives (``barrier``/``allreduce``/``allgather``/``alltoall``)
  make everyone wait for the last arrival (Wait at Barrier / Wait at N×N).

Compute regions may be inflated by a :class:`~repro.simulator.noise.NoiseModel`
(system interference).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.simulator.machine import MachineModel
from repro.simulator.noise import NoiseModel, NullNoise
from repro.simulator.program import Compute, MpiOp, Op, Program, SegmentBegin, SegmentEnd
from repro.trace.events import MpiCallInfo
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.trace import RankTrace, Trace
from repro.util.rng import rng_for

__all__ = ["SimulatorConfig", "SimulationEngine", "DeadlockError", "simulate"]


class DeadlockError(RuntimeError):
    """Raised when no rank can make progress (mismatched MPI operations)."""


@dataclass(frozen=True, slots=True)
class SimulatorConfig:
    """Engine configuration.

    Attributes
    ----------
    machine:
        Interconnect/MPI cost model.
    noise:
        Compute-time interference model (defaults to no noise).
    start_skew:
        Maximum random per-rank offset of the virtual clock at program start,
        in µs.  Real MPI processes never start in perfect lockstep; a small
        skew avoids artificial exact ties before ``MPI_Init``.
    seed:
        Seed for the start skew.
    """

    machine: MachineModel = field(default_factory=MachineModel)
    noise: NoiseModel = field(default_factory=NullNoise)
    start_skew: float = 10.0
    seed: int = 0


@dataclass(slots=True)
class _Posting:
    """One rank's pending MPI call."""

    rank: int
    enter: float
    info: MpiCallInfo
    name: str


@dataclass(slots=True)
class _RankState:
    rank: int
    ops: list
    pc: int = 0
    clock: float = 0.0
    blocked: bool = False
    finished: bool = False
    records: list = field(default_factory=list)

    def record(self, kind: RecordKind, timestamp: float, name: str, mpi: MpiCallInfo | None = None) -> None:
        self.records.append(
            TraceRecord(kind=kind, rank=self.rank, timestamp=timestamp, name=name, mpi=mpi)
        )


class SimulationEngine:
    """Executes one program and produces its raw trace."""

    def __init__(self, program: Program, config: SimulatorConfig | None = None):
        self.program = program
        self.config = config or SimulatorConfig()
        self._machine = self.config.machine
        self._noise = self.config.noise
        self._states: list[_RankState] = []
        # collective matching: per-rank collective sequence counter and
        # per-sequence pending postings
        self._coll_seq: list[int] = [0] * program.nprocs
        self._pending_coll: Dict[int, Dict[int, _Posting]] = {}
        # point-to-point matching: FIFO queues keyed by (src, dst, tag)
        self._pending_sends: Dict[Tuple[int, int, int], Deque[_Posting]] = {}
        self._pending_recvs: Dict[Tuple[int, int, int], Deque[_Posting]] = {}
        # rank -> exit time, filled when a pending MPI call resolves
        self._completions: Dict[int, float] = {}

    # -- public API ----------------------------------------------------------

    def run(self) -> Trace:
        """Execute the program to completion and return the raw trace."""
        self._init_states()
        states = self._states
        while True:
            unfinished = [s for s in states if not s.finished]
            if not unfinished:
                break
            progressed = False
            for state in states:
                progressed |= self._advance(state)
            if not progressed:
                blocked = [
                    f"rank {s.rank} at op {s.pc} ({self._describe_current(s)})"
                    for s in states
                    if not s.finished
                ]
                raise DeadlockError(
                    "no rank can make progress; blocked ranks: " + "; ".join(blocked)
                )
        ranks = [RankTrace(rank=s.rank, records=s.records) for s in states]
        return Trace(name=self.program.name, ranks=ranks)

    # -- internals -----------------------------------------------------------

    def _init_states(self) -> None:
        rng = rng_for(self.config.seed, "start_skew", self.program.name)
        skews = (
            rng.uniform(0.0, self.config.start_skew, size=self.program.nprocs)
            if self.config.start_skew > 0
            else [0.0] * self.program.nprocs
        )
        self._states = [
            _RankState(rank=r, ops=self.program.ops_for(r), clock=float(skews[r]))
            for r in range(self.program.nprocs)
        ]

    def _describe_current(self, state: _RankState) -> str:
        if state.pc >= len(state.ops):
            return "<end>"
        op = state.ops[state.pc]
        if isinstance(op, MpiOp):
            return f"{op.name}[{op.info.op}]"
        return type(op).__name__

    def _advance(self, state: _RankState) -> bool:
        """Advance one rank as far as possible; return True if progress was made."""
        if state.finished:
            return False
        progressed = False
        if state.blocked:
            exit_time = self._completions.pop(state.rank, None)
            if exit_time is None:
                return False
            op = state.ops[state.pc]
            assert isinstance(op, MpiOp)
            state.record(RecordKind.EXIT, exit_time, op.name)
            state.clock = exit_time
            state.blocked = False
            state.pc += 1
            progressed = True

        while state.pc < len(state.ops):
            op = state.ops[state.pc]
            if isinstance(op, SegmentBegin):
                state.record(RecordKind.SEGMENT_BEGIN, state.clock, op.context)
                state.pc += 1
            elif isinstance(op, SegmentEnd):
                state.record(RecordKind.SEGMENT_END, state.clock, op.context)
                state.pc += 1
            elif isinstance(op, Compute):
                extra = self._noise.extra_delay(state.rank, state.clock, op.duration)
                start = state.clock
                end = start + op.duration + extra
                state.record(RecordKind.ENTER, start, op.name)
                state.record(RecordKind.EXIT, end, op.name)
                state.clock = end
                state.pc += 1
            elif isinstance(op, MpiOp):
                state.record(RecordKind.ENTER, state.clock, op.name, mpi=op.info)
                self._post_mpi(state.rank, state.clock, op)
                exit_time = self._completions.pop(state.rank, None)
                if exit_time is None:
                    state.blocked = True
                    progressed = True
                    return progressed
                state.record(RecordKind.EXIT, exit_time, op.name)
                state.clock = exit_time
                state.pc += 1
            else:  # pragma: no cover - op union is exhaustive
                raise TypeError(f"unknown op type {type(op).__name__}")
            progressed = True

        if not state.finished:
            state.finished = True
            progressed = True
        return progressed

    # -- MPI matching --------------------------------------------------------

    def _post_mpi(self, rank: int, enter: float, op: MpiOp) -> None:
        info = op.info
        posting = _Posting(rank=rank, enter=enter, info=info, name=op.name)
        if info.is_collective:
            self._post_collective(posting)
        elif info.op == "send":
            # Eager send: completes locally, but is registered so the matching
            # receive can compute when the data becomes available.
            self._completions[rank] = enter + self._machine.local_send_cost(info.nbytes)
            key = (rank, self._require_peer(posting), self._tag(info))
            self._pending_sends.setdefault(key, deque()).append(posting)
            self._match_p2p(key)
        elif info.op == "ssend":
            key = (rank, self._require_peer(posting), self._tag(info))
            self._pending_sends.setdefault(key, deque()).append(posting)
            self._match_p2p(key)
        elif info.op == "recv":
            key = (self._require_peer(posting), rank, self._tag(info))
            self._pending_recvs.setdefault(key, deque()).append(posting)
            self._match_p2p(key)
        elif info.op == "sendrecv":
            # The send half is eager (registered so the destination can match
            # it); the call blocks until the receive half has been satisfied.
            dest = self._require_peer(posting)
            source = info.source if info.source is not None else dest
            send_key = (rank, dest, self._tag(info))
            recv_key = (source, rank, self._tag(info))
            self._pending_sends.setdefault(send_key, deque()).append(posting)
            self._match_p2p(send_key)
            self._pending_recvs.setdefault(recv_key, deque()).append(posting)
            self._match_p2p(recv_key)
        else:  # pragma: no cover - MpiCallInfo validates op names
            raise ValueError(f"unknown MPI op {info.op!r}")

    @staticmethod
    def _tag(info: MpiCallInfo) -> int:
        return info.tag if info.tag is not None else 0

    @staticmethod
    def _require_peer(posting: _Posting) -> int:
        if posting.info.peer is None:
            raise ValueError(
                f"{posting.info.op} on rank {posting.rank} requires a peer rank"
            )
        return posting.info.peer

    def _post_collective(self, posting: _Posting) -> None:
        rank = posting.rank
        seq = self._coll_seq[rank]
        self._coll_seq[rank] += 1
        group = self._pending_coll.setdefault(seq, {})
        if group:
            reference = next(iter(group.values()))
            if reference.info.op != posting.info.op or reference.info.root != posting.info.root:
                raise DeadlockError(
                    f"collective mismatch at sequence {seq}: rank {reference.rank} called "
                    f"{reference.info.op} (root={reference.info.root}) but rank {rank} called "
                    f"{posting.info.op} (root={posting.info.root})"
                )
        group[rank] = posting
        if len(group) == self.program.nprocs:
            self._resolve_collective(group)
            del self._pending_coll[seq]

    def _resolve_collective(self, group: Dict[int, _Posting]) -> None:
        nprocs = self.program.nprocs
        postings = [group[r] for r in range(nprocs)]
        op = postings[0].info.op
        nbytes = max(p.info.nbytes for p in postings)
        cost = self._machine.collective_cost(nprocs, nbytes)
        last_enter = max(p.enter for p in postings)
        if op in ("barrier", "allreduce", "allgather", "alltoall"):
            for p in postings:
                self._completions[p.rank] = last_enter + cost
        elif op in ("bcast", "scatter"):
            root = postings[0].info.root
            root_enter = group[root].enter
            for p in postings:
                if p.rank == root:
                    self._completions[p.rank] = root_enter + cost
                else:
                    self._completions[p.rank] = max(p.enter, root_enter) + cost
        elif op in ("gather", "reduce"):
            root = postings[0].info.root
            for p in postings:
                if p.rank == root:
                    self._completions[p.rank] = last_enter + cost
                else:
                    self._completions[p.rank] = p.enter + self._machine.local_send_cost(
                        p.info.nbytes
                    )
        else:  # pragma: no cover - collective set is exhaustive
            raise ValueError(f"unknown collective {op!r}")

    def _match_p2p(self, key: Tuple[int, int, int]) -> None:
        sends = self._pending_sends.get(key)
        recvs = self._pending_recvs.get(key)
        while sends and recvs:
            send = sends.popleft()
            recv = recvs.popleft()
            nbytes = send.info.nbytes
            if send.info.op == "ssend":
                # Synchronous handshake: neither side proceeds before both arrived.
                rendezvous = max(send.enter, recv.enter)
                self._completions[send.rank] = rendezvous + self._machine.local_send_cost(nbytes)
                self._completions[recv.rank] = (
                    rendezvous + self._machine.transfer_time(nbytes) + self._machine.mpi_overhead
                )
            else:
                # Eager send: data is on the wire at send.enter; receiver waits
                # for it if it arrived at the receive first.
                data_ready = send.enter + self._machine.transfer_time(nbytes)
                self._completions[recv.rank] = (
                    max(recv.enter, data_ready) + self._machine.mpi_overhead
                )

def simulate(program: Program, config: SimulatorConfig | None = None) -> Trace:
    """Convenience wrapper: execute ``program`` and return its raw trace."""
    return SimulationEngine(program, config).run()
